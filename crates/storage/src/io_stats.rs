//! Disk I/O accounting and the latency model.
//!
//! The paper's experiments measure the candidate refinement cost as disk page
//! fetches and model the refinement time as `T_refine ≈ T_io · C_refine`
//! (§2.2). The reproduction replaces a physical disk with a deterministic
//! counter: every 4 KB page fetch increments [`IoStats`], and
//! [`IoModel::modeled_time`] converts page counts into seconds with a
//! configurable per-page latency (default HDD-class 5 ms, calibrated in
//! DESIGN.md §4).
//!
//! [`IoStats`] doubles as a facade over the `hc-obs` metrics registry: once
//! [`IoStats::bind`] attaches a [`MetricsRegistry`], every increment also
//! feeds the `storage.pages_read` / `storage.points_fetched` /
//! `storage.pages_deduped` counters, so experiment reports see disk activity
//! without the engine threading a registry through every fetch call.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Duration;

use hc_obs::{Counter, MetricsRegistry};

/// Registry-side counters mirrored by [`IoStats`].
#[derive(Debug)]
struct IoMirror {
    pages_read: Counter,
    points_fetched: Counter,
    pages_deduped: Counter,
    pages_retried: Counter,
    pages_coalesced: Counter,
    hot_hits: Counter,
    lookahead_issued: Counter,
    lookahead_wasted: Counter,
}

/// Monotone counters of simulated disk activity. Cloneable snapshots allow
/// per-phase deltas.
#[derive(Debug, Default)]
pub struct IoStats {
    pages_read: AtomicU64,
    points_fetched: AtomicU64,
    pages_deduped: AtomicU64,
    pages_retried: AtomicU64,
    pages_coalesced: AtomicU64,
    hot_hits: AtomicU64,
    lookahead_issued: AtomicU64,
    lookahead_wasted: AtomicU64,
    mirror: OnceLock<IoMirror>,
}

impl IoStats {
    pub fn new() -> Self {
        Self::default()
    }

    /// Mirror every future increment into `registry` under the
    /// `storage.pages_read` / `storage.points_fetched` /
    /// `storage.pages_deduped` counters. Binding is once-only: later calls
    /// (or binding a noop registry first) leave the existing mirror in place.
    /// The local counters stay authoritative for [`IoStats::snapshot`];
    /// [`IoStats::reset`] does not touch the registry series, which are
    /// cleared by `MetricsRegistry::reset` between experiment runs.
    pub fn bind(&self, registry: &MetricsRegistry) {
        if !registry.is_enabled() {
            return;
        }
        let _ = self.mirror.set(IoMirror {
            pages_read: registry.counter("storage.pages_read"),
            points_fetched: registry.counter("storage.points_fetched"),
            pages_deduped: registry.counter("storage.pages_deduped"),
            pages_retried: registry.counter("storage.pages_retried"),
            pages_coalesced: registry.counter("storage.io.pages_coalesced"),
            hot_hits: registry.counter("storage.io.hot_hits"),
            lookahead_issued: registry.counter("storage.io.lookahead_issued"),
            lookahead_wasted: registry.counter("storage.io.lookahead_wasted"),
        });
    }

    /// Record one page fetch.
    #[inline]
    pub fn record_page(&self) {
        self.pages_read.fetch_add(1, Ordering::Relaxed);
        if let Some(m) = self.mirror.get() {
            m.pages_read.inc();
        }
    }

    /// Record one point resolved from a fetched (or buffered) page.
    #[inline]
    pub fn record_point(&self) {
        self.points_fetched.fetch_add(1, Ordering::Relaxed);
        if let Some(m) = self.mirror.get() {
            m.points_fetched.inc();
        }
    }

    /// Record a page access satisfied by the within-query buffer — an I/O
    /// the dedup saved. `pages_read + pages_deduped` is the number of page
    /// accesses a bufferless reader would have paid.
    #[inline]
    pub fn record_page_deduped(&self) {
        self.pages_deduped.fetch_add(1, Ordering::Relaxed);
        if let Some(m) = self.mirror.get() {
            m.pages_deduped.inc();
        }
    }

    /// Record a retried page read (attempt > 0 after a fault). Every retry
    /// is *also* counted in `pages_read` — it is a real disk operation and
    /// belongs in modeled latency — so `pages_read - pages_retried` is the
    /// first-attempt read count the §4 cost model predicts.
    #[inline]
    pub fn record_page_retried(&self) {
        self.pages_retried.fetch_add(1, Ordering::Relaxed);
        if let Some(m) = self.mirror.get() {
            m.pages_retried.inc();
        }
    }

    /// Record a page access satisfied by joining another query's in-flight
    /// fetch (single-flight coalescing in a fetch broker). Like a dedup, the
    /// waiter paid no physical I/O of its own — the leader's read is the one
    /// counted in `pages_read`. Coalesced waits on the *error* path count
    /// here too: the shared failure replaced a physical attempt.
    #[inline]
    pub fn record_page_coalesced(&self) {
        self.pages_coalesced.fetch_add(1, Ordering::Relaxed);
        if let Some(m) = self.mirror.get() {
            m.pages_coalesced.inc();
        }
    }

    /// Record a page access served by a shared hot-page buffer without
    /// touching the store. Never double-counted as a point-cache hit — the
    /// `cache.*` series belong to the distance caches, this is page-level.
    #[inline]
    pub fn record_hot_hit(&self) {
        self.hot_hits.fetch_add(1, Ordering::Relaxed);
        if let Some(m) = self.mirror.get() {
            m.hot_hits.inc();
        }
    }

    /// Record one page prefetched ahead of need by look-ahead refinement.
    #[inline]
    pub fn record_lookahead_issued(&self) {
        self.lookahead_issued.fetch_add(1, Ordering::Relaxed);
        if let Some(m) = self.mirror.get() {
            m.lookahead_issued.inc();
        }
    }

    /// Record `n` look-ahead pages that no evaluated candidate ever used
    /// (the stopping rule fired first) — the tunable waste of the policy.
    #[inline]
    pub fn record_lookahead_wasted(&self, n: u64) {
        if n == 0 {
            return;
        }
        self.lookahead_wasted.fetch_add(n, Ordering::Relaxed);
        if let Some(m) = self.mirror.get() {
            m.lookahead_wasted.add(n);
        }
    }

    /// Total pages read so far.
    #[inline]
    pub fn pages_read(&self) -> u64 {
        self.pages_read.load(Ordering::Relaxed)
    }

    /// Total point fetch requests so far. Always ≥ `pages_read()`: every
    /// page read is triggered by some point fetch, and when co-located
    /// points share a page the within-query buffer satisfies the later
    /// fetches without new I/O.
    #[inline]
    pub fn points_fetched(&self) -> u64 {
        self.points_fetched.load(Ordering::Relaxed)
    }

    /// Total page accesses absorbed by within-query dedup.
    #[inline]
    pub fn pages_deduped(&self) -> u64 {
        self.pages_deduped.load(Ordering::Relaxed)
    }

    /// Total retried page reads (fault-recovery reruns).
    #[inline]
    pub fn pages_retried(&self) -> u64 {
        self.pages_retried.load(Ordering::Relaxed)
    }

    /// Total page accesses absorbed by cross-query single-flight coalescing.
    #[inline]
    pub fn pages_coalesced(&self) -> u64 {
        self.pages_coalesced.load(Ordering::Relaxed)
    }

    /// Total page accesses served by a shared hot-page buffer.
    #[inline]
    pub fn hot_hits(&self) -> u64 {
        self.hot_hits.load(Ordering::Relaxed)
    }

    /// Total pages prefetched ahead of need by look-ahead refinement.
    #[inline]
    pub fn lookahead_issued(&self) -> u64 {
        self.lookahead_issued.load(Ordering::Relaxed)
    }

    /// Total look-ahead pages never used by an evaluated candidate.
    #[inline]
    pub fn lookahead_wasted(&self) -> u64 {
        self.lookahead_wasted.load(Ordering::Relaxed)
    }

    /// An immutable snapshot for delta computation.
    pub fn snapshot(&self) -> IoSnapshot {
        IoSnapshot {
            pages_read: self.pages_read(),
            points_fetched: self.points_fetched(),
            pages_deduped: self.pages_deduped(),
            pages_retried: self.pages_retried(),
            pages_coalesced: self.pages_coalesced(),
            hot_hits: self.hot_hits(),
            lookahead_issued: self.lookahead_issued(),
            lookahead_wasted: self.lookahead_wasted(),
        }
    }

    /// Reset all counters to zero (between experiments).
    pub fn reset(&self) {
        self.pages_read.store(0, Ordering::Relaxed);
        self.points_fetched.store(0, Ordering::Relaxed);
        self.pages_deduped.store(0, Ordering::Relaxed);
        self.pages_retried.store(0, Ordering::Relaxed);
        self.pages_coalesced.store(0, Ordering::Relaxed);
        self.hot_hits.store(0, Ordering::Relaxed);
        self.lookahead_issued.store(0, Ordering::Relaxed);
        self.lookahead_wasted.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time copy of the counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IoSnapshot {
    pub pages_read: u64,
    pub points_fetched: u64,
    pub pages_deduped: u64,
    pub pages_retried: u64,
    pub pages_coalesced: u64,
    pub hot_hits: u64,
    pub lookahead_issued: u64,
    pub lookahead_wasted: u64,
}

impl IoSnapshot {
    /// Counter increase since an earlier snapshot.
    pub fn delta_since(&self, earlier: IoSnapshot) -> IoSnapshot {
        IoSnapshot {
            pages_read: self.pages_read - earlier.pages_read,
            points_fetched: self.points_fetched - earlier.points_fetched,
            pages_deduped: self.pages_deduped - earlier.pages_deduped,
            pages_retried: self.pages_retried - earlier.pages_retried,
            pages_coalesced: self.pages_coalesced - earlier.pages_coalesced,
            hot_hits: self.hot_hits - earlier.hot_hits,
            lookahead_issued: self.lookahead_issued - earlier.lookahead_issued,
            lookahead_wasted: self.lookahead_wasted - earlier.lookahead_wasted,
        }
    }

    /// Reads that were not fault-recovery reruns — what the §4 cost model
    /// actually predicts.
    pub fn first_attempt_reads(&self) -> u64 {
        self.pages_read.saturating_sub(self.pages_retried)
    }
}

/// Latency model converting page counts into modeled wall-clock time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IoModel {
    /// Cost of fetching one page (`T_io`).
    pub t_io: Duration,
}

impl IoModel {
    /// HDD-class default: 5 ms per random 4 KB page. With ~100 candidate
    /// I/Os per query this reproduces the paper's ≈0.5 s EXACT-cache
    /// refinement times on SOGOU.
    pub const HDD: IoModel = IoModel {
        t_io: Duration::from_millis(5),
    };

    /// SSD-class alternative for sensitivity runs: 100 µs per page.
    pub const SSD: IoModel = IoModel {
        t_io: Duration::from_micros(100),
    };

    /// Modeled time for a number of page reads. Computed in `f64` so page
    /// counts above `u32::MAX` scale linearly instead of saturating.
    pub fn modeled_time(&self, pages: u64) -> Duration {
        Duration::from_secs_f64(self.modeled_secs(pages))
    }

    /// Modeled seconds as `f64` (convenient for table output).
    pub fn modeled_secs(&self, pages: u64) -> f64 {
        self.t_io.as_secs_f64() * pages as f64
    }
}

impl Default for IoModel {
    fn default() -> Self {
        Self::HDD
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = IoStats::new();
        s.record_page();
        s.record_page();
        s.record_point();
        s.record_page_deduped();
        assert_eq!(s.pages_read(), 2);
        assert_eq!(s.points_fetched(), 1);
        assert_eq!(s.pages_deduped(), 1);
    }

    #[test]
    fn snapshots_compute_deltas() {
        let s = IoStats::new();
        s.record_page();
        let a = s.snapshot();
        s.record_page();
        s.record_point();
        s.record_page_deduped();
        let d = s.snapshot().delta_since(a);
        assert_eq!(d.pages_read, 1);
        assert_eq!(d.points_fetched, 1);
        assert_eq!(d.pages_deduped, 1);
    }

    #[test]
    fn reset_zeroes_every_counter() {
        // Regression guard: reset must clear points_fetched (and the dedup
        // counter), not just pages_read — a stale count here would corrupt
        // every later per-query delta.
        let s = IoStats::new();
        s.record_page();
        s.record_point();
        s.record_point();
        s.record_page_deduped();
        s.reset();
        assert_eq!(s.pages_read(), 0);
        assert_eq!(s.points_fetched(), 0, "reset left points_fetched stale");
        assert_eq!(s.pages_deduped(), 0, "reset left pages_deduped stale");
        assert_eq!(s.snapshot(), IoSnapshot::default());
    }

    #[test]
    fn bound_registry_mirrors_increments() {
        let registry = MetricsRegistry::new();
        let s = IoStats::new();
        s.bind(&registry);
        s.record_page();
        s.record_point();
        s.record_point();
        s.record_page_deduped();
        let snap = registry.snapshot();
        assert_eq!(snap.counter("storage.pages_read"), Some(1));
        assert_eq!(snap.counter("storage.points_fetched"), Some(2));
        assert_eq!(snap.counter("storage.pages_deduped"), Some(1));
        // Local counters stay authoritative and independent of the registry.
        registry.reset();
        assert_eq!(s.pages_read(), 1);
    }

    #[test]
    fn unbound_stats_touch_no_registry() {
        let s = IoStats::new();
        s.record_page();
        assert_eq!(s.pages_read(), 1);
        // Binding after the fact only mirrors future increments.
        let registry = MetricsRegistry::new();
        s.bind(&registry);
        s.record_page();
        assert_eq!(registry.snapshot().counter("storage.pages_read"), Some(1));
        assert_eq!(s.pages_read(), 2);
    }

    #[test]
    fn retried_reads_are_counted_separately_and_mirrored() {
        let registry = MetricsRegistry::new();
        let s = IoStats::new();
        s.bind(&registry);
        s.record_page(); // first attempt fails
        s.record_page(); // retry succeeds
        s.record_page_retried();
        s.record_point();
        assert_eq!(s.pages_read(), 2);
        assert_eq!(s.pages_retried(), 1);
        let snap = s.snapshot();
        assert_eq!(snap.first_attempt_reads(), 1);
        assert_eq!(
            registry.snapshot().counter("storage.pages_retried"),
            Some(1)
        );
        s.reset();
        assert_eq!(s.pages_retried(), 0, "reset left pages_retried stale");
    }

    #[test]
    fn broker_counters_accumulate_mirror_and_reset() {
        let registry = MetricsRegistry::new();
        let s = IoStats::new();
        s.bind(&registry);
        s.record_page_coalesced();
        s.record_page_coalesced();
        s.record_hot_hit();
        s.record_lookahead_issued();
        s.record_lookahead_issued();
        s.record_lookahead_issued();
        s.record_lookahead_wasted(2);
        s.record_lookahead_wasted(0); // no-op, must not touch the mirror
        assert_eq!(s.pages_coalesced(), 2);
        assert_eq!(s.hot_hits(), 1);
        assert_eq!(s.lookahead_issued(), 3);
        assert_eq!(s.lookahead_wasted(), 2);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("storage.io.pages_coalesced"), Some(2));
        assert_eq!(snap.counter("storage.io.hot_hits"), Some(1));
        assert_eq!(snap.counter("storage.io.lookahead_issued"), Some(3));
        assert_eq!(snap.counter("storage.io.lookahead_wasted"), Some(2));
        let a = s.snapshot();
        s.record_page_coalesced();
        s.record_hot_hit();
        let d = s.snapshot().delta_since(a);
        assert_eq!(d.pages_coalesced, 1);
        assert_eq!(d.hot_hits, 1);
        assert_eq!(d.lookahead_issued, 0);
        s.reset();
        assert_eq!(s.snapshot(), IoSnapshot::default());
    }

    #[test]
    fn latency_model_scales_linearly() {
        let m = IoModel::HDD;
        assert_eq!(m.modeled_time(0), Duration::ZERO);
        assert_eq!(m.modeled_time(100), Duration::from_millis(500));
        assert!((m.modeled_secs(96) - 0.48).abs() < 1e-12);
        assert!(IoModel::SSD.modeled_secs(100) < m.modeled_secs(100));
    }

    #[test]
    fn latency_model_handles_huge_page_counts() {
        // Regression guard: the old implementation clamped the page count to
        // u32::MAX, silently capping modeled time for >16 TiB of 4 KB reads.
        let m = IoModel::HDD;
        let pages = (u32::MAX as u64) * 8;
        let secs = m.modeled_time(pages).as_secs_f64();
        assert!((secs - m.modeled_secs(pages)).abs() < 1e-3);
        assert!(
            secs > m.modeled_time(u32::MAX as u64).as_secs_f64() * 7.9,
            "modeled_time must keep scaling past u32::MAX pages"
        );
    }
}
