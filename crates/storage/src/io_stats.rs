//! Disk I/O accounting and the latency model.
//!
//! The paper's experiments measure the candidate refinement cost as disk page
//! fetches and model the refinement time as `T_refine ≈ T_io · C_refine`
//! (§2.2). The reproduction replaces a physical disk with a deterministic
//! counter: every 4 KB page fetch increments [`IoStats`], and
//! [`IoModel::modeled_time`] converts page counts into seconds with a
//! configurable per-page latency (default HDD-class 5 ms, calibrated in
//! DESIGN.md §4).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Monotone counters of simulated disk activity. Cloneable snapshots allow
/// per-phase deltas.
#[derive(Debug, Default)]
pub struct IoStats {
    pages_read: AtomicU64,
    points_fetched: AtomicU64,
}

impl IoStats {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one page fetch.
    #[inline]
    pub fn record_page(&self) {
        self.pages_read.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one point resolved from a fetched (or buffered) page.
    #[inline]
    pub fn record_point(&self) {
        self.points_fetched.fetch_add(1, Ordering::Relaxed);
    }

    /// Total pages read so far.
    #[inline]
    pub fn pages_read(&self) -> u64 {
        self.pages_read.load(Ordering::Relaxed)
    }

    /// Total point fetch requests so far (≥ pages when multiple points share
    /// a page and dedup is on; ≤ pages otherwise never happens).
    #[inline]
    pub fn points_fetched(&self) -> u64 {
        self.points_fetched.load(Ordering::Relaxed)
    }

    /// An immutable snapshot for delta computation.
    pub fn snapshot(&self) -> IoSnapshot {
        IoSnapshot {
            pages_read: self.pages_read(),
            points_fetched: self.points_fetched(),
        }
    }

    /// Reset all counters to zero (between experiments).
    pub fn reset(&self) {
        self.pages_read.store(0, Ordering::Relaxed);
        self.points_fetched.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time copy of the counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IoSnapshot {
    pub pages_read: u64,
    pub points_fetched: u64,
}

impl IoSnapshot {
    /// Counter increase since an earlier snapshot.
    pub fn delta_since(&self, earlier: IoSnapshot) -> IoSnapshot {
        IoSnapshot {
            pages_read: self.pages_read - earlier.pages_read,
            points_fetched: self.points_fetched - earlier.points_fetched,
        }
    }
}

/// Latency model converting page counts into modeled wall-clock time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IoModel {
    /// Cost of fetching one page (`T_io`).
    pub t_io: Duration,
}

impl IoModel {
    /// HDD-class default: 5 ms per random 4 KB page. With ~100 candidate
    /// I/Os per query this reproduces the paper's ≈0.5 s EXACT-cache
    /// refinement times on SOGOU.
    pub const HDD: IoModel = IoModel { t_io: Duration::from_millis(5) };

    /// SSD-class alternative for sensitivity runs: 100 µs per page.
    pub const SSD: IoModel = IoModel { t_io: Duration::from_micros(100) };

    /// Modeled time for a number of page reads.
    pub fn modeled_time(&self, pages: u64) -> Duration {
        self.t_io.saturating_mul(u32::try_from(pages).unwrap_or(u32::MAX))
    }

    /// Modeled seconds as `f64` (convenient for table output).
    pub fn modeled_secs(&self, pages: u64) -> f64 {
        self.t_io.as_secs_f64() * pages as f64
    }
}

impl Default for IoModel {
    fn default() -> Self {
        Self::HDD
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = IoStats::new();
        s.record_page();
        s.record_page();
        s.record_point();
        assert_eq!(s.pages_read(), 2);
        assert_eq!(s.points_fetched(), 1);
    }

    #[test]
    fn snapshots_compute_deltas() {
        let s = IoStats::new();
        s.record_page();
        let a = s.snapshot();
        s.record_page();
        s.record_point();
        let d = s.snapshot().delta_since(a);
        assert_eq!(d.pages_read, 1);
        assert_eq!(d.points_fetched, 1);
    }

    #[test]
    fn reset_zeroes_counters() {
        let s = IoStats::new();
        s.record_page();
        s.reset();
        assert_eq!(s.pages_read(), 0);
    }

    #[test]
    fn latency_model_scales_linearly() {
        let m = IoModel::HDD;
        assert_eq!(m.modeled_time(0), Duration::ZERO);
        assert_eq!(m.modeled_time(100), Duration::from_millis(500));
        assert!((m.modeled_secs(96) - 0.48).abs() < 1e-12);
        assert!(IoModel::SSD.modeled_secs(100) < m.modeled_secs(100));
    }
}
