//! # hc-storage
//!
//! The disk substrate of the reproduction: a deterministic paged "disk" for
//! the sequential point file, I/O accounting with a latency model, and the
//! physical file orderings of the paper's §5.2.2 experiment.
//!
//! The paper stores datasets on a hard disk with the OS cache disabled and
//! measures refinement cost in candidate fetches (`T_refine ≈ T_io ·
//! C_refine`, §2.2). This crate replaces the physical disk with an exact
//! simulation: every 4 KB page fetch increments a counter, and modeled time
//! is `T_io × pages`. See DESIGN.md §4 for why this substitution preserves
//! the paper's comparisons.
//!
//! The read path is fallible (DESIGN.md §10): pages carry build-time
//! checksums verified on every physical read ([`codec`]), reads go through
//! the [`PageStore`] trait and return `Result<&[f32], StorageError>`, a
//! seedable [`FaultInjector`] can make any fault class actually happen, and
//! [`RetryPolicy`] bounds the recovery effort above it. Backoff waits go
//! through the [`Clock`] abstraction, so the only real `thread::sleep` in
//! the recovery path lives inside [`RealClock`] and tests run on a
//! [`SimulatedClock`]. A [`Scrubber`] pass (DESIGN.md §11) walks every
//! page, verifies checksums physically, and repairs sticky-unreadable
//! pages from the build-time replica so degraded availability recovers.

pub mod clock;
pub mod codec;
pub mod error;
pub mod fault;
pub mod io_stats;
pub mod ordering;
pub mod point_file;
pub mod retry;
pub mod scrub;
pub mod store;

pub use clock::{Clock, RealClock, SimulatedClock};
pub use error::StorageError;
pub use fault::{FaultConfig, FaultInjector};
pub use io_stats::{IoModel, IoSnapshot, IoStats};
pub use point_file::{PageBuffer, PointFile, PAGE_SIZE};
pub use retry::{RetryObs, RetryPolicy};
pub use scrub::{ScrubReport, ScrubbablePageStore, Scrubber};
pub use store::PageStore;
