//! # hc-storage
//!
//! The disk substrate of the reproduction: a deterministic paged "disk" for
//! the sequential point file, I/O accounting with a latency model, and the
//! physical file orderings of the paper's §5.2.2 experiment.
//!
//! The paper stores datasets on a hard disk with the OS cache disabled and
//! measures refinement cost in candidate fetches (`T_refine ≈ T_io ·
//! C_refine`, §2.2). This crate replaces the physical disk with an exact
//! simulation: every 4 KB page fetch increments a counter, and modeled time
//! is `T_io × pages`. See DESIGN.md §4 for why this substitution preserves
//! the paper's comparisons.

pub mod io_stats;
pub mod ordering;
pub mod point_file;

pub use io_stats::{IoModel, IoSnapshot, IoStats};
pub use point_file::{PageBuffer, PointFile, PAGE_SIZE};
