//! The sequential dataset file `P` (paper §2.1): points stored in pages on
//! the simulated disk, addressable by point identifier.
//!
//! Layout mirrors the paper's setup: 4 KB pages (their experimental system's
//! block size), `⌊4096 / (d·4)⌋` points per page (at least one — a 960-d
//! SOGOU point is 3840 bytes and fills a page by itself). A physical
//! *position* in the file is decoupled from the point *id* by a permutation
//! so that the §5.2.2 file-ordering experiment (Raw / Clustered / SortedKey)
//! can relocate points without touching ids.
//!
//! Every page fetch is counted in [`IoStats`]. A per-query [`PageBuffer`]
//! deduplicates fetches of the same page within one query — reading two
//! co-located candidates costs one I/O, which is precisely the effect file
//! orderings try to exploit.
//!
//! Since the robustness work (DESIGN.md §10) the file is a checksummed,
//! fallible [`PageStore`]: every page gets an xxhash-style checksum at build
//! time ([`crate::codec`]), verified on each physical read through
//! [`PointFile::try_fetch`]. The pristine device never actually fails — the
//! error path exists so a [`crate::fault::FaultInjector`] can be layered on
//! top and so callers are forced to handle the day it does.

use std::collections::HashSet;

use hc_core::dataset::{Dataset, PointId};

use crate::codec;
use crate::error::StorageError;
use crate::io_stats::IoStats;
use crate::store::PageStore;

/// Disk block size, as in the paper's experimental setup.
pub const PAGE_SIZE: usize = 4096;

/// A paged, permutable view of the dataset acting as the on-disk point file.
pub struct PointFile {
    dataset: Dataset,
    /// `position_of[id] = position` in file order.
    position_of: Vec<u32>,
    /// Inverse permutation (`position → id`).
    id_at: Vec<u32>,
    /// Build-time page checksums, verified on every physical page read.
    checksums: Vec<u64>,
    points_per_page: usize,
    stats: IoStats,
}

impl PointFile {
    /// Store the dataset in its raw (id) order.
    pub fn new(dataset: Dataset) -> Self {
        let n = dataset.len();
        Self::with_order(dataset, (0..n as u32).collect())
    }

    /// Store the dataset so that file position `pos` holds point
    /// `order[pos]`.
    ///
    /// # Panics
    /// Panics if `order` is not a permutation of `0..n`.
    pub fn with_order(dataset: Dataset, order: Vec<u32>) -> Self {
        let n = dataset.len();
        assert_eq!(order.len(), n, "order must cover every point");
        let mut position_of = vec![u32::MAX; n];
        for (pos, &id) in order.iter().enumerate() {
            let slot = &mut position_of[id as usize];
            assert_eq!(*slot, u32::MAX, "duplicate id {id} in order");
            *slot = pos as u32;
        }
        let points_per_page = (PAGE_SIZE / dataset.point_bytes()).max(1);
        let num_pages = (n as u64).div_ceil(points_per_page as u64) as usize;
        // Build-time codec pass: one checksum per page over the resident
        // points' payloads, in file order.
        let mut checksums = Vec::with_capacity(num_pages);
        for page in 0..num_pages {
            let start = page * points_per_page;
            let end = (start + points_per_page).min(n);
            let mut hasher = codec::PageHasher::new(codec::CHECKSUM_SEED);
            for &id in &order[start..end] {
                hasher.update(dataset.point(PointId(id)));
            }
            checksums.push(hasher.finish());
        }
        Self {
            dataset,
            position_of,
            id_at: order,
            checksums,
            points_per_page,
            stats: IoStats::new(),
        }
    }

    /// Points stored per 4 KB page.
    #[inline]
    pub fn points_per_page(&self) -> usize {
        self.points_per_page
    }

    /// Total pages in the file.
    pub fn num_pages(&self) -> u64 {
        (self.dataset.len() as u64).div_ceil(self.points_per_page as u64)
    }

    /// The page holding a point id under the current ordering.
    #[inline]
    pub fn page_of(&self, id: PointId) -> u64 {
        (self.position_of[id.index()] as u64) / self.points_per_page as u64
    }

    /// The I/O counters of this file.
    pub fn stats(&self) -> &IoStats {
        &self.stats
    }

    /// The backing dataset (offline use only — reading through this does NOT
    /// count I/O; index construction and histogram building are offline
    /// phases in the paper).
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// Dimensionality of stored points.
    pub fn dim(&self) -> usize {
        self.dataset.dim()
    }

    /// Number of stored points.
    pub fn len(&self) -> usize {
        self.dataset.len()
    }

    pub fn is_empty(&self) -> bool {
        self.dataset.is_empty()
    }

    /// The build-time checksum of a page.
    pub fn page_checksum(&self, page: u64) -> u64 {
        self.checksums[page as usize]
    }

    /// The floats resident on a page, concatenated in file order — what the
    /// codec hashed at build time. No I/O is counted: callers (checksum
    /// verification, fault layers materializing a corrupted transfer) invoke
    /// this as part of a page read that is already accounted.
    pub fn page_payload(&self, page: u64) -> Vec<f32> {
        let start = page as usize * self.points_per_page;
        let end = (start + self.points_per_page).min(self.dataset.len());
        let mut payload = Vec::with_capacity((end - start) * self.dataset.dim());
        for pos in start..end {
            payload.extend_from_slice(self.dataset.point(PointId(self.id_at[pos])));
        }
        payload
    }

    /// Begin a query: a fresh page buffer for within-query dedup.
    pub fn begin_query(&self) -> PageBuffer {
        PageBuffer {
            pages: HashSet::new(),
        }
    }

    /// Fallible point fetch — the [`PageStore`] read path. A fresh page read
    /// is counted, checksummed, and verified; a buffered page costs nothing
    /// and cannot fail. `attempt > 0` additionally counts as a retried read.
    ///
    /// On the pristine device the verification always passes (the dataset
    /// never mutates); the `Err` arm is the contract fault layers implement.
    pub fn try_fetch(
        &self,
        id: PointId,
        attempt: u32,
        buffer: &mut PageBuffer,
    ) -> Result<&[f32], StorageError> {
        let page = self.page_of(id);
        if buffer.pages.contains(&page) {
            self.stats.record_page_deduped();
            self.stats.record_point();
            return Ok(self.dataset.point(id));
        }
        self.stats.record_page();
        if attempt > 0 {
            self.stats.record_page_retried();
        }
        let got = codec::page_checksum(&self.page_payload(page));
        let expected = self.checksums[page as usize];
        if got != expected {
            return Err(StorageError::ChecksumMismatch {
                page,
                expected,
                got,
            });
        }
        buffer.pages.insert(page);
        self.stats.record_point();
        Ok(self.dataset.point(id))
    }

    /// Infallible fetch for callers that opted out of fault handling (the
    /// pristine file cannot actually fail).
    ///
    /// # Panics
    /// Panics if the read errors — only possible through a fault layer,
    /// which infallible callers must not stack underneath.
    pub fn fetch(&self, id: PointId, buffer: &mut PageBuffer) -> &[f32] {
        self.try_fetch(id, 0, buffer)
            .expect("pristine point file cannot fail a read")
    }

    /// Fetch a whole page's worth of points by page number (used by indexes
    /// whose leaves are data pages). Counts a single page I/O (with dedup)
    /// and returns the ids stored on that page in file order.
    pub fn fetch_page(&self, page: u64, buffer: &mut PageBuffer) -> Vec<PointId> {
        assert!(page < self.num_pages(), "page {page} out of range");
        if buffer.pages.insert(page) {
            self.stats.record_page();
        } else {
            self.stats.record_page_deduped();
        }
        let start = page as usize * self.points_per_page;
        let end = (start + self.points_per_page).min(self.dataset.len());
        (start..end)
            .map(|pos| PointId::from(self.id_at[pos]))
            .collect()
    }

    /// Cost (in pages) of a full sequential scan of the file.
    pub fn sequential_scan_pages(&self) -> u64 {
        self.num_pages()
    }
}

impl PageStore for PointFile {
    fn read_point<'s>(
        &'s self,
        id: PointId,
        attempt: u32,
        buffer: &mut PageBuffer,
    ) -> Result<&'s [f32], StorageError> {
        self.try_fetch(id, attempt, buffer)
    }

    fn begin_query(&self) -> PageBuffer {
        PointFile::begin_query(self)
    }

    fn page_of(&self, id: PointId) -> u64 {
        PointFile::page_of(self, id)
    }

    fn stats(&self) -> &IoStats {
        PointFile::stats(self)
    }

    fn dim(&self) -> usize {
        PointFile::dim(self)
    }

    fn len(&self) -> usize {
        PointFile::len(self)
    }

    fn num_pages(&self) -> u64 {
        PointFile::num_pages(self)
    }
}

/// Per-query set of already-fetched pages (the paper's within-query buffer:
/// "OS cache was disabled" across queries, but a candidate list naturally
/// reads each needed page once).
pub struct PageBuffer {
    pages: HashSet<u64>,
}

impl PageBuffer {
    /// Pages touched by this query so far.
    pub fn pages_touched(&self) -> usize {
        self.pages.len()
    }

    /// Whether a page is already buffered.
    pub fn contains(&self, page: u64) -> bool {
        self.pages.contains(&page)
    }

    /// Mark `page` as resident without a read through this buffer. For
    /// shared-buffer layers above the store (a fetch broker's hot-page
    /// buffer or a coalesced in-flight fetch): the page's bytes were already
    /// checksum-verified by the physical read that admitted it, so the
    /// invariant that buffered pages never fail is preserved. Reads of a
    /// marked page are served as within-query dedups.
    pub fn mark_buffered(&mut self, page: u64) {
        self.pages.insert(page);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset(n: usize, d: usize) -> Dataset {
        let rows: Vec<Vec<f32>> = (0..n)
            .map(|i| (0..d).map(|j| (i * d + j) as f32).collect())
            .collect();
        Dataset::from_rows(&rows)
    }

    #[test]
    fn page_geometry_matches_paper_table2() {
        // 150-d points (600 B) → 6 per 4 KB page; 960-d (3840 B) → 1 per page.
        let f150 = PointFile::new(dataset(20, 150));
        assert_eq!(f150.points_per_page(), 6);
        assert_eq!(f150.num_pages(), 4);
        let f960 = PointFile::new(dataset(3, 960));
        assert_eq!(f960.points_per_page(), 1);
        assert_eq!(f960.num_pages(), 3);
    }

    #[test]
    fn fetch_counts_one_page_per_distinct_page() {
        let f = PointFile::new(dataset(12, 150)); // 6 points/page
        let mut buf = f.begin_query();
        f.fetch(PointId(0), &mut buf);
        f.fetch(PointId(1), &mut buf); // same page: no new I/O
        f.fetch(PointId(6), &mut buf); // second page
        assert_eq!(f.stats().pages_read(), 2);
        assert_eq!(f.stats().points_fetched(), 3);
        assert_eq!(
            f.stats().pages_deduped(),
            1,
            "buffered re-access is a dedup saving"
        );
        assert_eq!(buf.pages_touched(), 2);
    }

    #[test]
    fn new_query_rereads_pages() {
        let f = PointFile::new(dataset(6, 150));
        let mut q1 = f.begin_query();
        f.fetch(PointId(0), &mut q1);
        let mut q2 = f.begin_query();
        f.fetch(PointId(0), &mut q2);
        assert_eq!(f.stats().pages_read(), 2, "no cross-query OS cache");
    }

    #[test]
    fn fetch_returns_correct_point_regardless_of_order() {
        let ds = dataset(8, 3);
        let order: Vec<u32> = vec![7, 6, 5, 4, 3, 2, 1, 0];
        let f = PointFile::with_order(ds.clone(), order);
        let mut buf = f.begin_query();
        assert_eq!(f.fetch(PointId(3), &mut buf), ds.point(PointId(3)));
    }

    #[test]
    fn ordering_changes_page_colocation() {
        // 12 points, 6/page. Raw order: ids 0..5 on page 0. Reversed order:
        // ids 6..11 on page 0.
        let raw = PointFile::new(dataset(12, 150));
        let rev = PointFile::with_order(dataset(12, 150), (0..12u32).rev().collect());
        assert_eq!(raw.page_of(PointId(0)), 0);
        assert_eq!(rev.page_of(PointId(0)), 1);
    }

    #[test]
    fn fetch_page_returns_resident_ids() {
        let f = PointFile::with_order(dataset(12, 150), (0..12u32).rev().collect());
        let mut buf = f.begin_query();
        let ids = f.fetch_page(0, &mut buf);
        assert_eq!(ids.len(), 6);
        assert!(ids.contains(&PointId(11)) && ids.contains(&PointId(6)));
        assert_eq!(f.stats().pages_read(), 1);
        // Fetching a resident point afterwards is free.
        f.fetch(PointId(7), &mut buf);
        assert_eq!(f.stats().pages_read(), 1);
    }

    #[test]
    #[should_panic(expected = "duplicate id")]
    fn with_order_rejects_non_permutation() {
        let _ = PointFile::with_order(dataset(3, 2), vec![0, 0, 2]);
    }

    #[test]
    fn checksums_cover_every_page_and_verify_on_fetch() {
        let f = PointFile::with_order(dataset(13, 150), (0..13u32).rev().collect());
        assert_eq!(f.num_pages(), 3, "12 full slots + 1 trailing point");
        for page in 0..f.num_pages() {
            assert_eq!(
                crate::codec::page_checksum(&f.page_payload(page)),
                f.page_checksum(page),
                "build-time checksum of page {page} must match its payload"
            );
        }
        // The pristine read path verifies and succeeds for every point.
        let mut buf = f.begin_query();
        for id in 0..13u32 {
            assert!(f.try_fetch(PointId(id), 0, &mut buf).is_ok());
        }
    }

    #[test]
    fn retried_attempts_feed_the_retry_counter() {
        let f = PointFile::new(dataset(6, 150));
        let mut buf = f.begin_query();
        // A retry of a page that never made it into the buffer re-reads it.
        f.try_fetch(PointId(0), 0, &mut buf).unwrap();
        let mut buf2 = f.begin_query();
        f.try_fetch(PointId(0), 3, &mut buf2).unwrap();
        assert_eq!(f.stats().pages_read(), 2);
        assert_eq!(f.stats().pages_retried(), 1);
        assert_eq!(f.stats().snapshot().first_attempt_reads(), 1);
    }

    #[test]
    fn page_store_trait_reads_through_the_same_counters() {
        let f = PointFile::new(dataset(12, 150));
        let store: &dyn PageStore = &f;
        let mut buf = store.begin_query();
        let p = store.read_point(PointId(2), 0, &mut buf).unwrap();
        assert_eq!(p, f.dataset().point(PointId(2)));
        assert_eq!(store.stats().pages_read(), 1);
        assert_eq!(store.page_of(PointId(2)), 0);
        assert_eq!(store.len(), 12);
        assert_eq!(store.num_pages(), 2);
    }
}
