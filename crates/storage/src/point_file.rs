//! The sequential dataset file `P` (paper §2.1): points stored in pages on
//! the simulated disk, addressable by point identifier.
//!
//! Layout mirrors the paper's setup: 4 KB pages (their experimental system's
//! block size), `⌊4096 / (d·4)⌋` points per page (at least one — a 960-d
//! SOGOU point is 3840 bytes and fills a page by itself). A physical
//! *position* in the file is decoupled from the point *id* by a permutation
//! so that the §5.2.2 file-ordering experiment (Raw / Clustered / SortedKey)
//! can relocate points without touching ids.
//!
//! Every page fetch is counted in [`IoStats`]. A per-query [`PageBuffer`]
//! deduplicates fetches of the same page within one query — reading two
//! co-located candidates costs one I/O, which is precisely the effect file
//! orderings try to exploit.

use std::collections::HashSet;
use std::sync::OnceLock;

use hc_core::dataset::{Dataset, PointId};

use crate::io_stats::IoStats;

/// Disk block size, as in the paper's experimental setup.
pub const PAGE_SIZE: usize = 4096;

/// A paged, permutable view of the dataset acting as the on-disk point file.
pub struct PointFile {
    dataset: Dataset,
    /// `position_of[id] = position` in file order.
    position_of: Vec<u32>,
    /// Lazily-built inverse permutation (`position → id`), only materialized
    /// by `fetch_page`.
    id_at: OnceLock<Vec<u32>>,
    points_per_page: usize,
    stats: IoStats,
}

impl PointFile {
    /// Store the dataset in its raw (id) order.
    pub fn new(dataset: Dataset) -> Self {
        let n = dataset.len();
        Self::with_order(dataset, (0..n as u32).collect())
    }

    /// Store the dataset so that file position `pos` holds point
    /// `order[pos]`.
    ///
    /// # Panics
    /// Panics if `order` is not a permutation of `0..n`.
    pub fn with_order(dataset: Dataset, order: Vec<u32>) -> Self {
        let n = dataset.len();
        assert_eq!(order.len(), n, "order must cover every point");
        let mut position_of = vec![u32::MAX; n];
        for (pos, &id) in order.iter().enumerate() {
            let slot = &mut position_of[id as usize];
            assert_eq!(*slot, u32::MAX, "duplicate id {id} in order");
            *slot = pos as u32;
        }
        let points_per_page = (PAGE_SIZE / dataset.point_bytes()).max(1);
        Self {
            dataset,
            position_of,
            id_at: OnceLock::new(),
            points_per_page,
            stats: IoStats::new(),
        }
    }

    /// Points stored per 4 KB page.
    #[inline]
    pub fn points_per_page(&self) -> usize {
        self.points_per_page
    }

    /// Total pages in the file.
    pub fn num_pages(&self) -> u64 {
        (self.dataset.len() as u64).div_ceil(self.points_per_page as u64)
    }

    /// The page holding a point id under the current ordering.
    #[inline]
    pub fn page_of(&self, id: PointId) -> u64 {
        (self.position_of[id.index()] as u64) / self.points_per_page as u64
    }

    /// The I/O counters of this file.
    pub fn stats(&self) -> &IoStats {
        &self.stats
    }

    /// The backing dataset (offline use only — reading through this does NOT
    /// count I/O; index construction and histogram building are offline
    /// phases in the paper).
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// Dimensionality of stored points.
    pub fn dim(&self) -> usize {
        self.dataset.dim()
    }

    /// Number of stored points.
    pub fn len(&self) -> usize {
        self.dataset.len()
    }

    pub fn is_empty(&self) -> bool {
        self.dataset.is_empty()
    }

    /// Begin a query: a fresh page buffer for within-query dedup.
    pub fn begin_query(&self) -> PageBuffer {
        PageBuffer {
            pages: HashSet::new(),
        }
    }

    /// Fetch a point from disk, counting page I/O unless the page is already
    /// in this query's buffer.
    pub fn fetch(&self, id: PointId, buffer: &mut PageBuffer) -> &[f32] {
        let page = self.page_of(id);
        if buffer.pages.insert(page) {
            self.stats.record_page();
        } else {
            self.stats.record_page_deduped();
        }
        self.stats.record_point();
        self.dataset.point(id)
    }

    /// Fetch a whole page's worth of points by page number (used by indexes
    /// whose leaves are data pages). Counts a single page I/O (with dedup)
    /// and returns the ids stored on that page in file order.
    pub fn fetch_page(&self, page: u64, buffer: &mut PageBuffer) -> Vec<PointId> {
        assert!(page < self.num_pages(), "page {page} out of range");
        if buffer.pages.insert(page) {
            self.stats.record_page();
        } else {
            self.stats.record_page_deduped();
        }
        let start = page as usize * self.points_per_page;
        let end = (start + self.points_per_page).min(self.dataset.len());
        let id_at = self.id_at.get_or_init(|| {
            let mut inv = vec![u32::MAX; self.position_of.len()];
            for (id, &pos) in self.position_of.iter().enumerate() {
                inv[pos as usize] = id as u32;
            }
            inv
        });
        (start..end).map(|pos| PointId::from(id_at[pos])).collect()
    }

    /// Cost (in pages) of a full sequential scan of the file.
    pub fn sequential_scan_pages(&self) -> u64 {
        self.num_pages()
    }
}

/// Per-query set of already-fetched pages (the paper's within-query buffer:
/// "OS cache was disabled" across queries, but a candidate list naturally
/// reads each needed page once).
pub struct PageBuffer {
    pages: HashSet<u64>,
}

impl PageBuffer {
    /// Pages touched by this query so far.
    pub fn pages_touched(&self) -> usize {
        self.pages.len()
    }

    /// Whether a page is already buffered.
    pub fn contains(&self, page: u64) -> bool {
        self.pages.contains(&page)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset(n: usize, d: usize) -> Dataset {
        let rows: Vec<Vec<f32>> = (0..n)
            .map(|i| (0..d).map(|j| (i * d + j) as f32).collect())
            .collect();
        Dataset::from_rows(&rows)
    }

    #[test]
    fn page_geometry_matches_paper_table2() {
        // 150-d points (600 B) → 6 per 4 KB page; 960-d (3840 B) → 1 per page.
        let f150 = PointFile::new(dataset(20, 150));
        assert_eq!(f150.points_per_page(), 6);
        assert_eq!(f150.num_pages(), 4);
        let f960 = PointFile::new(dataset(3, 960));
        assert_eq!(f960.points_per_page(), 1);
        assert_eq!(f960.num_pages(), 3);
    }

    #[test]
    fn fetch_counts_one_page_per_distinct_page() {
        let f = PointFile::new(dataset(12, 150)); // 6 points/page
        let mut buf = f.begin_query();
        f.fetch(PointId(0), &mut buf);
        f.fetch(PointId(1), &mut buf); // same page: no new I/O
        f.fetch(PointId(6), &mut buf); // second page
        assert_eq!(f.stats().pages_read(), 2);
        assert_eq!(f.stats().points_fetched(), 3);
        assert_eq!(
            f.stats().pages_deduped(),
            1,
            "buffered re-access is a dedup saving"
        );
        assert_eq!(buf.pages_touched(), 2);
    }

    #[test]
    fn new_query_rereads_pages() {
        let f = PointFile::new(dataset(6, 150));
        let mut q1 = f.begin_query();
        f.fetch(PointId(0), &mut q1);
        let mut q2 = f.begin_query();
        f.fetch(PointId(0), &mut q2);
        assert_eq!(f.stats().pages_read(), 2, "no cross-query OS cache");
    }

    #[test]
    fn fetch_returns_correct_point_regardless_of_order() {
        let ds = dataset(8, 3);
        let order: Vec<u32> = vec![7, 6, 5, 4, 3, 2, 1, 0];
        let f = PointFile::with_order(ds.clone(), order);
        let mut buf = f.begin_query();
        assert_eq!(f.fetch(PointId(3), &mut buf), ds.point(PointId(3)));
    }

    #[test]
    fn ordering_changes_page_colocation() {
        // 12 points, 6/page. Raw order: ids 0..5 on page 0. Reversed order:
        // ids 6..11 on page 0.
        let raw = PointFile::new(dataset(12, 150));
        let rev = PointFile::with_order(dataset(12, 150), (0..12u32).rev().collect());
        assert_eq!(raw.page_of(PointId(0)), 0);
        assert_eq!(rev.page_of(PointId(0)), 1);
        // Fetching ids {0,1} costs 1 page raw, and also 1 page reversed
        // (they are still adjacent); fetching {0, 11} costs 2 raw but ids 0
        // and 11 are on different pages in both orders here — use {5, 6}:
        // raw → pages 0 and 1 (2 I/Os); reversed → pages 1 and 0 (2 I/Os).
        // The discriminating pair is {0, 6}: raw 2 pages, reversed... page_of
        // checks are the real assertion above.
    }

    #[test]
    fn fetch_page_returns_resident_ids() {
        let f = PointFile::with_order(dataset(12, 150), (0..12u32).rev().collect());
        let mut buf = f.begin_query();
        let ids = f.fetch_page(0, &mut buf);
        assert_eq!(ids.len(), 6);
        assert!(ids.contains(&PointId(11)) && ids.contains(&PointId(6)));
        assert_eq!(f.stats().pages_read(), 1);
        // Fetching a resident point afterwards is free.
        f.fetch(PointId(7), &mut buf);
        assert_eq!(f.stats().pages_read(), 1);
    }

    #[test]
    #[should_panic(expected = "duplicate id")]
    fn with_order_rejects_non_permutation() {
        let _ = PointFile::with_order(dataset(3, 2), vec![0, 0, 2]);
    }
}
