//! The storage fault taxonomy (DESIGN.md §10).
//!
//! The simulated disk can now fail the way the paper's physical disk could
//! have: a read may time out (transient), return corrupted bytes caught by
//! the page checksum, come back short (torn), or hit a page that is simply
//! gone. Every error is classified as *transient* (a bounded retry may
//! succeed — the fault was in the transfer) or *permanent* (retrying the
//! same page deterministically fails again), which is exactly the split the
//! [`crate::retry::RetryPolicy`] acts on.

use std::fmt;

/// Why a page read failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageError {
    /// The device reported a transient read error (bus timeout, command
    /// abort). The page itself is intact — a retry re-issues the read.
    TransientRead { page: u64 },
    /// The page codec's checksum did not match: the bytes that arrived are
    /// not the bytes that were written. Classified transient because the
    /// common cause is transfer corruption, not media damage — a re-read
    /// fetches the intact on-media copy.
    ChecksumMismatch { page: u64, expected: u64, got: u64 },
    /// Fewer bytes arrived than the page holds (torn / short read).
    /// Transient for the same reason as a checksum mismatch.
    TornPage {
        page: u64,
        got_bytes: usize,
        want_bytes: usize,
    },
    /// The page is permanently unreadable (media failure). Every retry
    /// fails identically; callers must degrade around the loss.
    Unreadable { page: u64 },
}

impl StorageError {
    /// Whether a bounded retry has any chance of succeeding.
    pub fn is_transient(&self) -> bool {
        !matches!(self, StorageError::Unreadable { .. })
    }

    /// The page the failed read addressed.
    pub fn page(&self) -> u64 {
        match *self {
            StorageError::TransientRead { page }
            | StorageError::ChecksumMismatch { page, .. }
            | StorageError::TornPage { page, .. }
            | StorageError::Unreadable { page } => page,
        }
    }

    /// Short label used for metric names and log lines.
    pub fn kind(&self) -> &'static str {
        match self {
            StorageError::TransientRead { .. } => "transient",
            StorageError::ChecksumMismatch { .. } => "corrupt",
            StorageError::TornPage { .. } => "torn",
            StorageError::Unreadable { .. } => "unreadable",
        }
    }
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::TransientRead { page } => {
                write!(f, "transient read error on page {page}")
            }
            StorageError::ChecksumMismatch {
                page,
                expected,
                got,
            } => write!(
                f,
                "checksum mismatch on page {page}: expected {expected:#018x}, got {got:#018x}"
            ),
            StorageError::TornPage {
                page,
                got_bytes,
                want_bytes,
            } => write!(
                f,
                "torn page {page}: {got_bytes} of {want_bytes} bytes arrived"
            ),
            StorageError::Unreadable { page } => write!(f, "page {page} permanently unreadable"),
        }
    }
}

impl std::error::Error for StorageError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_splits_transient_from_permanent() {
        assert!(StorageError::TransientRead { page: 3 }.is_transient());
        assert!(StorageError::ChecksumMismatch {
            page: 3,
            expected: 1,
            got: 2
        }
        .is_transient());
        assert!(StorageError::TornPage {
            page: 3,
            got_bytes: 100,
            want_bytes: 4096
        }
        .is_transient());
        assert!(!StorageError::Unreadable { page: 3 }.is_transient());
    }

    #[test]
    fn page_and_kind_are_stable() {
        let e = StorageError::Unreadable { page: 17 };
        assert_eq!(e.page(), 17);
        assert_eq!(e.kind(), "unreadable");
        assert!(e.to_string().contains("17"));
    }
}
