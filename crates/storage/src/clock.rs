//! Time source abstraction for backoff sleeps (DESIGN.md §10).
//!
//! The retry path must *wait* between attempts, but nothing about waiting
//! requires a wall clock: [`RetryPolicy::backoff`] already computes the
//! duration deterministically, so the only real-time dependency left is the
//! sleep itself. [`Clock`] factors that out:
//!
//! * [`RealClock`] — delegates to `std::thread::sleep`; the **only** place
//!   in the retry/backoff path that actually blocks the thread.
//! * [`SimulatedClock`] — records every requested sleep and returns
//!   immediately, so tests can assert jitter bounds, histogram buckets, and
//!   total elapsed backoff bit-exactly without any real sleeping, and
//!   benches with nonzero-base policies keep their modeled-latency numbers
//!   undistorted.
//!
//! [`RetryPolicy::backoff`]: crate::retry::RetryPolicy::backoff

use std::sync::Mutex;
use std::time::Duration;

/// A sink for backoff waits. Implementations decide whether the wait is a
/// real `thread::sleep` or merely accounted.
pub trait Clock: Send + Sync + std::fmt::Debug {
    /// Wait for `duration`. Callers skip zero durations, so implementations
    /// may assume `duration > 0`.
    fn sleep(&self, duration: Duration);
}

/// Wall-clock time: `sleep` blocks the calling thread for real.
#[derive(Debug, Default, Clone, Copy)]
pub struct RealClock;

impl Clock for RealClock {
    fn sleep(&self, duration: Duration) {
        if !duration.is_zero() {
            std::thread::sleep(duration);
        }
    }
}

/// Virtual time: `sleep` records the request and returns immediately.
///
/// The recorded sequence is inspectable, so a test can verify not just *that*
/// backoff happened but the exact deterministic jitter draws, in order.
#[derive(Debug, Default)]
pub struct SimulatedClock {
    sleeps: Mutex<Vec<Duration>>,
}

impl SimulatedClock {
    pub fn new() -> Self {
        Self::default()
    }

    /// Every sleep requested so far, in request order.
    pub fn sleeps(&self) -> Vec<Duration> {
        self.sleeps.lock().expect("clock poisoned").clone()
    }

    /// Number of sleeps requested.
    pub fn sleep_count(&self) -> usize {
        self.sleeps.lock().expect("clock poisoned").len()
    }

    /// Total virtual time slept — the "elapsed backoff" a real clock would
    /// have cost.
    pub fn total_slept(&self) -> Duration {
        self.sleeps.lock().expect("clock poisoned").iter().sum()
    }
}

impl Clock for SimulatedClock {
    fn sleep(&self, duration: Duration) {
        self.sleeps.lock().expect("clock poisoned").push(duration);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn simulated_clock_records_without_sleeping() {
        let clock = SimulatedClock::new();
        let t0 = Instant::now();
        clock.sleep(Duration::from_secs(3600));
        clock.sleep(Duration::from_millis(5));
        assert!(
            t0.elapsed() < Duration::from_secs(1),
            "simulated sleep must not block"
        );
        assert_eq!(clock.sleep_count(), 2);
        assert_eq!(
            clock.total_slept(),
            Duration::from_secs(3600) + Duration::from_millis(5)
        );
        assert_eq!(
            clock.sleeps(),
            vec![Duration::from_secs(3600), Duration::from_millis(5)]
        );
    }

    #[test]
    fn real_clock_skips_zero() {
        // Zero must return immediately (and not panic); a tiny nonzero sleep
        // must actually elapse.
        let t0 = Instant::now();
        RealClock.sleep(Duration::ZERO);
        RealClock.sleep(Duration::from_micros(50));
        assert!(t0.elapsed() >= Duration::from_micros(50));
    }

    #[test]
    fn clock_is_object_safe_and_shareable() {
        let clock: std::sync::Arc<dyn Clock> = std::sync::Arc::new(SimulatedClock::new());
        let c2 = std::sync::Arc::clone(&clock);
        std::thread::spawn(move || c2.sleep(Duration::from_secs(1)))
            .join()
            .expect("no panic");
    }
}
