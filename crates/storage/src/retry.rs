//! Bounded retries with decorrelated-jitter backoff (DESIGN.md §10).
//!
//! The refiner reads candidate points through [`RetryPolicy::fetch`] instead
//! of calling the store directly. Transient faults ([`StorageError::is_transient`])
//! are retried up to `max_retries` times with a decorrelated-jitter sleep
//! between attempts; permanent faults and exhausted budgets surface to the
//! caller, which degrades around the loss (hc-query drops the candidate and
//! marks the response `Degraded`).
//!
//! Defaults are zero-cost: `base = Duration::ZERO` means no sleeping at all,
//! so unit tests and benches with faults disabled pay nothing. The backoff is
//! deterministic — jitter comes from a seeded splitmix64 stream keyed on
//! `(seed, page, attempt)`, not a thread-local RNG — so chaos runs reproduce
//! bit-identically.

use std::time::Duration;

use hc_core::dataset::PointId;
use hc_obs::{Counter, Histogram, MetricsRegistry};

use crate::clock::{Clock, RealClock};
use crate::error::StorageError;
use crate::point_file::PageBuffer;
use crate::store::PageStore;

/// How hard to fight transient storage faults before giving up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Re-issues after the first attempt (so `max_retries = 3` means at most
    /// 4 physical reads of a page per fetch).
    pub max_retries: u32,
    /// Base backoff unit. `Duration::ZERO` (the default) disables sleeping
    /// entirely while keeping the retry loop.
    pub base: Duration,
    /// Upper clamp on any single backoff sleep.
    pub cap: Duration,
    /// Seed of the deterministic jitter stream.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 3,
            base: Duration::ZERO,
            cap: Duration::from_millis(50),
            seed: 0xB0FF_5EED,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries: the first error is final.
    pub fn none() -> Self {
        Self {
            max_retries: 0,
            ..Self::default()
        }
    }

    /// Decorrelated-jitter backoff for a given attempt (1-based: the sleep
    /// before re-issue number `attempt`). `sleep = min(cap, uniform(base,
    /// prev * 3))` per the classic AWS scheme, with the uniform draw taken
    /// from a deterministic hash of `(seed, page, attempt)`.
    pub fn backoff(&self, page: u64, attempt: u32) -> Duration {
        if self.base.is_zero() {
            return Duration::ZERO;
        }
        let base_us = self.base.as_micros() as u64;
        let cap_us = self.cap.as_micros() as u64;
        // prev follows the deterministic expectation chain base * 3^(a-1),
        // clamped at the cap so the uniform window stays bounded.
        let prev_us = base_us
            .saturating_mul(3u64.saturating_pow(attempt.saturating_sub(1)))
            .min(cap_us);
        let hi_us = prev_us.saturating_mul(3).min(cap_us).max(base_us);
        let span = hi_us - base_us;
        let draw = if span == 0 {
            0
        } else {
            mix(self.seed ^ page.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ u64::from(attempt))
                % (span + 1)
        };
        Duration::from_micros((base_us + draw).min(cap_us))
    }

    /// Fetch a point through `store`, retrying transient faults. Returns the
    /// point floats, or the error that exhausted the budget / was permanent.
    /// Every attempt, success, exhaustion, and backoff sleep is recorded in
    /// `obs` (no-op until bound to a registry). Backoff waits go through the
    /// wall clock ([`RealClock`]); engines that must not block real time use
    /// [`RetryPolicy::fetch_with`] and supply their own [`Clock`].
    pub fn fetch<'s>(
        &self,
        store: &'s dyn PageStore,
        id: PointId,
        buffer: &mut PageBuffer,
        obs: &RetryObs,
    ) -> Result<&'s [f32], StorageError> {
        self.fetch_with(store, id, buffer, obs, &RealClock)
    }

    /// [`RetryPolicy::fetch`] with an explicit time source: backoff waits are
    /// handed to `clock` instead of `thread::sleep`, so a
    /// [`crate::clock::SimulatedClock`] makes nonzero-base policies free and
    /// deterministically inspectable.
    pub fn fetch_with<'s>(
        &self,
        store: &'s dyn PageStore,
        id: PointId,
        buffer: &mut PageBuffer,
        obs: &RetryObs,
        clock: &dyn Clock,
    ) -> Result<&'s [f32], StorageError> {
        let mut attempt: u32 = 0;
        loop {
            obs.record_attempt();
            match store.read_point(id, attempt, &mut *buffer) {
                Ok(point) => {
                    if attempt > 0 {
                        obs.record_success_after_retry();
                    }
                    return Ok(point);
                }
                Err(err) => {
                    let retryable = err.is_transient() && attempt < self.max_retries;
                    if !retryable {
                        if err.is_transient() {
                            obs.record_exhausted();
                        }
                        return Err(err);
                    }
                    attempt += 1;
                    let sleep = self.backoff(store.page_of(id), attempt);
                    obs.record_backoff(sleep);
                    if !sleep.is_zero() {
                        clock.sleep(sleep);
                    }
                }
            }
        }
    }
}

/// splitmix64 finalizer — a cheap, well-distributed 64-bit mix.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Registry-backed retry telemetry. A fresh `RetryObs` is inert; binding it
/// to a registry activates the `retry.*` series.
#[derive(Debug, Default)]
pub struct RetryObs {
    inner: std::sync::OnceLock<RetryMirror>,
}

#[derive(Debug)]
struct RetryMirror {
    attempts: Counter,
    success_after_retry: Counter,
    exhausted: Counter,
    backoff_us: Histogram,
}

impl RetryObs {
    pub fn new() -> Self {
        Self::default()
    }

    /// Activate the `retry.attempts` / `retry.success` / `retry.exhausted`
    /// counters and the `retry.backoff_us` histogram. Once-only, like
    /// [`crate::io_stats::IoStats::bind`].
    pub fn bind(&self, registry: &MetricsRegistry) {
        if !registry.is_enabled() {
            return;
        }
        let _ = self.inner.set(RetryMirror {
            attempts: registry.counter("retry.attempts"),
            success_after_retry: registry.counter("retry.success"),
            exhausted: registry.counter("retry.exhausted"),
            backoff_us: registry.histogram("retry.backoff_us"),
        });
    }

    fn record_attempt(&self) {
        if let Some(m) = self.inner.get() {
            m.attempts.inc();
        }
    }

    fn record_success_after_retry(&self) {
        if let Some(m) = self.inner.get() {
            m.success_after_retry.inc();
        }
    }

    fn record_exhausted(&self) {
        if let Some(m) = self.inner.get() {
            m.exhausted.inc();
        }
    }

    fn record_backoff(&self, sleep: Duration) {
        if let Some(m) = self.inner.get() {
            m.backoff_us.record(sleep.as_micros() as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::SimulatedClock;
    use crate::fault::{FaultConfig, FaultInjector};
    use crate::point_file::PointFile;
    use hc_core::dataset::Dataset;
    use std::sync::Arc;

    fn file(n: usize, d: usize) -> PointFile {
        let rows: Vec<Vec<f32>> = (0..n)
            .map(|i| (0..d).map(|j| (i * d + j) as f32).collect())
            .collect();
        PointFile::new(Dataset::from_rows(&rows))
    }

    /// A store whose every physical read fails with a transient fault — the
    /// shape that exhausts the whole retry budget deterministically.
    fn always_transient(n: usize, d: usize) -> FaultInjector {
        FaultInjector::new(
            Arc::new(file(n, d)),
            FaultConfig {
                seed: 5,
                transient_rate: 1.0,
                ..FaultConfig::none()
            },
        )
    }

    #[test]
    fn zero_base_backoff_never_sleeps() {
        let p = RetryPolicy::default();
        for attempt in 1..=5 {
            assert_eq!(p.backoff(42, attempt), Duration::ZERO);
        }
        // Through the whole fetch loop too: an exhausted zero-base retry
        // budget requests no sleeps from the clock at all.
        let store = always_transient(6, 150);
        let clock = SimulatedClock::new();
        let obs = RetryObs::new();
        let mut buf = PageStore::begin_query(&store);
        assert!(p
            .fetch_with(&store, PointId(0), &mut buf, &obs, &clock)
            .is_err());
        assert_eq!(clock.sleep_count(), 0, "zero base must stay sleep-free");
    }

    #[test]
    fn backoff_is_deterministic_bounded_and_grows() {
        let p = RetryPolicy {
            base: Duration::from_micros(100),
            cap: Duration::from_millis(10),
            ..RetryPolicy::default()
        };
        let base_us = p.base.as_micros() as u64;
        let cap_us = p.cap.as_micros() as u64;
        for page in 0..32u64 {
            for attempt in 1..=6u32 {
                let a = p.backoff(page, attempt);
                assert_eq!(a, p.backoff(page, attempt), "jitter must be deterministic");
                assert!(a >= p.base && a <= p.cap, "sleep {a:?} out of [base, cap]");
                // Decorrelated-jitter window: the draw stays inside
                // [base, min(cap, 3^attempt · base)] — the window triples
                // per attempt until the cap clamps it.
                let hi_us = base_us
                    .saturating_mul(3u64.saturating_pow(attempt))
                    .min(cap_us);
                assert!(
                    a.as_micros() as u64 <= hi_us,
                    "attempt {attempt}: draw {a:?} above window {hi_us}µs"
                );
            }
        }
        // Different pages decorrelate: not every page draws the same sleep.
        let draws: std::collections::HashSet<Duration> =
            (0..32u64).map(|page| p.backoff(page, 2)).collect();
        assert!(draws.len() > 1, "jitter must vary across pages");
    }

    #[test]
    fn fetch_succeeds_on_pristine_store() {
        let f = file(12, 150);
        let policy = RetryPolicy::default();
        let obs = RetryObs::new();
        let clock = SimulatedClock::new();
        let mut buf = PageStore::begin_query(&f);
        let p = policy
            .fetch_with(&f, PointId(4), &mut buf, &obs, &clock)
            .unwrap();
        assert_eq!(p[0], 600.0);
        assert_eq!(f.stats().pages_read(), 1);
        assert_eq!(f.stats().pages_retried(), 0);
        assert_eq!(clock.sleep_count(), 0, "a clean read must not back off");
    }

    #[test]
    fn obs_counts_attempts_once_bound() {
        let registry = MetricsRegistry::new();
        let obs = RetryObs::new();
        obs.bind(&registry);
        let f = file(6, 150);
        let policy = RetryPolicy::default();
        let clock = SimulatedClock::new();
        let mut buf = PageStore::begin_query(&f);
        policy
            .fetch_with(&f, PointId(0), &mut buf, &obs, &clock)
            .unwrap();
        policy
            .fetch_with(&f, PointId(1), &mut buf, &obs, &clock)
            .unwrap();
        assert_eq!(registry.snapshot().counter("retry.attempts"), Some(2));
        assert_eq!(registry.snapshot().counter("retry.success"), Some(0));
    }

    #[test]
    fn simulated_clock_sees_the_exact_backoff_sequence() {
        // A nonzero-base policy against a store that faults every attempt:
        // the clock must receive exactly backoff(page, 1..=max_retries), in
        // order, with no real time passing.
        let policy = RetryPolicy {
            max_retries: 3,
            base: Duration::from_millis(200),
            cap: Duration::from_secs(5),
            ..RetryPolicy::default()
        };
        let store = always_transient(6, 150);
        let clock = SimulatedClock::new();
        let obs = RetryObs::new();
        let id = PointId(0);
        let page = store.page_of(id);
        let t0 = std::time::Instant::now();
        let mut buf = PageStore::begin_query(&store);
        let err = policy
            .fetch_with(&store, id, &mut buf, &obs, &clock)
            .unwrap_err();
        assert!(err.is_transient());
        assert!(
            t0.elapsed() < Duration::from_millis(100),
            "600ms+ of virtual backoff must cost no real time"
        );
        let want: Vec<Duration> = (1..=3).map(|a| policy.backoff(page, a)).collect();
        assert_eq!(clock.sleeps(), want, "clock must see each draw in order");
        assert!(want.iter().all(|s| *s >= policy.base));
        assert_eq!(clock.total_slept(), want.iter().sum());
    }

    #[test]
    fn backoff_histogram_and_total_elapsed_match_the_simulated_clock() {
        // Total-elapsed accounting: the retry.backoff_us histogram and the
        // simulated clock must agree on count and total, and the buckets
        // must hold every recorded sleep.
        let registry = MetricsRegistry::new();
        let obs = RetryObs::new();
        obs.bind(&registry);
        let policy = RetryPolicy {
            max_retries: 3,
            base: Duration::from_millis(1),
            cap: Duration::from_millis(50),
            ..RetryPolicy::default()
        };
        let store = always_transient(24, 150);
        let clock = SimulatedClock::new();
        for id in [0u32, 6, 12, 18] {
            let mut buf = PageStore::begin_query(&store);
            assert!(policy
                .fetch_with(&store, PointId(id), &mut buf, &obs, &clock)
                .is_err());
        }
        let snap = registry.snapshot();
        let hist = snap.histogram("retry.backoff_us").expect("backoff series");
        assert_eq!(hist.count, 12, "4 fetches × 3 backoffs each");
        assert_eq!(clock.sleep_count(), 12);
        assert_eq!(hist.sum, clock.total_slept().as_micros() as u64);
        let bucket_total: u64 = hist.buckets.iter().map(|&(_, c)| c).sum();
        assert_eq!(bucket_total, hist.count, "buckets must cover every sleep");
        assert!(hist.min >= policy.base.as_micros() as u64);
        assert!(hist.max <= policy.cap.as_micros() as u64);
        assert_eq!(snap.counter("retry.attempts"), Some(16));
        assert_eq!(snap.counter("retry.exhausted"), Some(4));
    }
}
