//! [`PageStore`] — the fallible read abstraction over the simulated disk.
//!
//! [`crate::point_file::PointFile`] used to be the engine's storage type
//! directly, with an infallible `fetch → &[f32]`. That made the whole stack
//! assume the disk never lies: one bad page would have panicked the process.
//! `PageStore` is the honest interface — the read path returns
//! `Result<&[f32], StorageError>` — and everything above (the multi-step
//! refiner, the serving workers) consumes storage through it.
//!
//! Two implementations exist:
//! * [`PointFile`](crate::point_file::PointFile) — the pristine device;
//!   reads always succeed, but the page checksum is still verified on every
//!   physical read (the codec is not fault-injection theater: the pristine
//!   path runs the same verification).
//! * [`FaultInjector`](crate::fault::FaultInjector) — a deterministic,
//!   seedable fault layer over any store, for chaos testing.

use hc_core::dataset::PointId;
use hc_obs::MetricsRegistry;

use crate::error::StorageError;
use crate::io_stats::IoStats;
use crate::point_file::PageBuffer;

/// A paged point store whose read path can fail.
///
/// `attempt` is the zero-based retry ordinal of this read: the retry policy
/// passes 0 on the first try and increments on each re-issue. Stores use it
/// for two things — accounting (attempts > 0 are counted as
/// `pages_retried`, so cost-model drift gauges can exclude reruns) and
/// deterministic fault schedules (a transient fault keyed on
/// `(page, attempt)` cures on retry; a permanent one keyed on `page` alone
/// does not).
pub trait PageStore: Send + Sync {
    /// Fetch one point, paying a page I/O unless the page is already in this
    /// query's buffer. Buffered pages never fail: their bytes were verified
    /// when first read.
    fn read_point<'s>(
        &'s self,
        id: PointId,
        attempt: u32,
        buffer: &mut PageBuffer,
    ) -> Result<&'s [f32], StorageError>;

    /// Begin a query: a fresh page buffer for within-query dedup.
    fn begin_query(&self) -> PageBuffer;

    /// The page holding a point id under the current ordering.
    fn page_of(&self, id: PointId) -> u64;

    /// The I/O counters of the underlying device.
    fn stats(&self) -> &IoStats;

    /// Dimensionality of stored points.
    fn dim(&self) -> usize;

    /// Number of stored points.
    fn len(&self) -> usize;

    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total pages in the store.
    fn num_pages(&self) -> u64;

    /// Mirror this store's counters (I/O, and for fault layers the
    /// `storage.fault.*` series) into `registry`. Default: just the I/O
    /// counters.
    fn bind_obs(&self, registry: &MetricsRegistry) {
        self.stats().bind(registry);
    }
}
