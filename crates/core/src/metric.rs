//! Histogram quality metrics for kNN search (paper §3.4).
//!
//! * **M1** ([`m1_metric`]) — the exact objective of Definition 9: the number
//!   of cached candidates that still *require refinement* (cannot be pruned or
//!   confirmed) across the workload. This is what the system ultimately pays
//!   I/O for, but it is too expensive to optimize directly.
//! * **M2** ([`m2_metric`]) — the relaxation `Σ_q Σ_r ||ε(b^q_r)||²` over the
//!   k-th-upper-bound contributors `QR`.
//! * **M3** — the bucket-form rewrite of M2 used by Algorithm 2; evaluated in
//!   [`crate::histogram::knn_optimal::m3_metric`]. Lemma 2 proves M2 ≡ M3, and
//!   a test here verifies our implementations agree numerically.

use std::collections::HashSet;

use crate::bounds::DistBounds;
use crate::dataset::{Dataset, PointId};
use crate::distance::kth_smallest;
use crate::scheme::ApproxScheme;

/// One workload query together with the candidate set its index reported.
#[derive(Debug, Clone)]
pub struct QueryCandidates {
    pub query: Vec<f32>,
    pub candidates: Vec<PointId>,
}

/// Exact M1 metric (Definition 9): over every workload query, count the
/// cached candidates `c ∈ C(q) ∧ Ψ` with `refine_H(c) = 1`, i.e. candidates
/// whose bounds neither prune them (`dist⁻ ≥ ub_k`) nor confirm them
/// (`dist⁺ ≤ lb_k`).
///
/// `lb_k`/`ub_k` are the k-th minima over the *full* candidate set, with
/// cache misses contributing the unknown bounds `(0, +∞)` exactly as in
/// Algorithm 1.
pub fn m1_metric(
    scheme: &dyn ApproxScheme,
    dataset: &Dataset,
    workload: &[QueryCandidates],
    cached: &HashSet<PointId>,
    k: usize,
) -> u64 {
    assert!(k >= 1);
    let mut total = 0u64;
    let mut buf: Vec<u64> = Vec::new();
    for qc in workload {
        let bounds: Vec<DistBounds> = qc
            .candidates
            .iter()
            .map(|&id| {
                if cached.contains(&id) {
                    buf.clear();
                    scheme.encode_into(dataset.point(id), &mut buf);
                    scheme.bounds(&qc.query, &buf)
                } else {
                    DistBounds::UNKNOWN
                }
            })
            .collect();
        let lbs: Vec<f64> = bounds.iter().map(|b| b.lb).collect();
        let ubs: Vec<f64> = bounds.iter().map(|b| b.ub).collect();
        let lb_k = kth_smallest(&lbs, k);
        let ub_k = kth_smallest(&ubs, k);
        for (b, id) in bounds.iter().zip(&qc.candidates) {
            if !cached.contains(id) {
                continue; // M1 sums only over C(q) ∧ Ψ
            }
            let pruned = b.lb >= ub_k;
            let confirmed = b.ub <= lb_k;
            if !pruned && !confirmed {
                total += 1;
            }
        }
    }
    total
}

/// M2 metric: `Σ_{b ∈ QR} ||ε(b)||²` under a scheme, where `QR` is the
/// multiset of k-th-upper-bound contributor points collected from the
/// workload (paper Eqn. 2; built by `hc-query::builder`).
pub fn m2_metric(scheme: &dyn ApproxScheme, dataset: &Dataset, qr: &[PointId]) -> f64 {
    let mut buf: Vec<u64> = Vec::new();
    qr.iter()
        .map(|&id| {
            buf.clear();
            scheme.encode_into(dataset.point(id), &mut buf);
            scheme.error_norm_sq(&buf)
        })
        .sum()
}

/// The workload frequency array `F'[x]` (paper Eqn. 3): for each point in
/// `QR`, count the quantized level of every coordinate.
pub fn f_prime_array(
    dataset: &Dataset,
    quantizer: &crate::quantize::Quantizer,
    qr: &[PointId],
) -> Vec<u64> {
    let mut f = vec![0u64; quantizer.n_dom() as usize];
    for &id in qr {
        for &v in dataset.point(id) {
            f[quantizer.level(v) as usize] += 1;
        }
    }
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::classic::equi_width;
    use crate::histogram::knn_optimal::m3_metric;
    use crate::quantize::Quantizer;
    use crate::scheme::GlobalScheme;

    /// Paper Figure 5 world: 2-d points on [0,32), query q=(9,11).
    fn fig5_world() -> (Dataset, GlobalScheme, QueryCandidates) {
        let ds = Dataset::from_rows(&[
            vec![2.0, 20.0],  // p1
            vec![10.0, 16.0], // p2
            vec![19.0, 30.0], // p3
            vec![26.0, 4.0],  // p4
            vec![11.0, 18.0], // p5
            vec![3.0, 24.0],  // p6
        ]);
        let quant = Quantizer::new(0.0, 32.0, 32);
        let scheme = GlobalScheme::new(equi_width(32, 4), quant, 2);
        let qc = QueryCandidates {
            query: vec![9.0, 11.0],
            candidates: (0u32..6).map(PointId::from).collect(),
        };
        (ds, scheme, qc)
    }

    #[test]
    fn m1_counts_paper_example() {
        // §3.2 example, k=1: p1..p4 cached, p5/p6 missing. On the paper's
        // integer domain ub_1 = 13.42 (p2) and p3/p4 prune, leaving M1 = 2.
        // Our conservative real-valued intervals widen ub_1 to 14.77, which
        // puts p3 (lb ≈ 14.76) a hair under the threshold: p4 still prunes,
        // and p1, p2, p3 remain → M1 = 3.
        let (ds, scheme, qc) = fig5_world();
        let cached: HashSet<PointId> = (0u32..4).map(PointId::from).collect();
        let m1 = m1_metric(&scheme, &ds, &[qc], &cached, 1);
        assert_eq!(m1, 3);
    }

    #[test]
    fn empty_cache_needs_no_bound_evaluation() {
        let (ds, scheme, qc) = fig5_world();
        let cached = HashSet::new();
        // No cached candidates → M1 sums over the empty set.
        assert_eq!(m1_metric(&scheme, &ds, &[qc], &cached, 1), 0);
    }

    #[test]
    fn full_cache_with_singleton_buckets_confirms_or_prunes_everything() {
        // With one bucket per level, bounds are near-exact: every far
        // candidate prunes. The nearest candidate can never confirm itself at
        // k=1 (its own ub exceeds its own lb), so exactly one remains.
        let ds = Dataset::from_rows(&[
            vec![0.0, 0.0],
            vec![10.0, 10.0],
            vec![20.0, 20.0],
            vec![30.0, 30.0],
        ]);
        let quant = Quantizer::new(0.0, 32.0, 1024);
        let scheme = GlobalScheme::new(equi_width(1024, 1024), quant, 2);
        let qc = QueryCandidates {
            query: vec![1.0, 1.0],
            candidates: (0u32..4).map(PointId::from).collect(),
        };
        let cached: HashSet<PointId> = (0u32..4).map(PointId::from).collect();
        assert_eq!(m1_metric(&scheme, &ds, &[qc], &cached, 1), 1);
    }

    #[test]
    fn m2_equals_m3_lemma2() {
        // Lemma 2: Σ_QR ||ε||² computed point-wise (M2) equals the bucket-form
        // Σ_i Σ_x F'[x]·(u_i−l_i)² (M3) when widths are measured in the same
        // units. We verify in *level* units by using a unit-step quantizer.
        let ds = Dataset::from_rows(&[vec![3.0, 17.0], vec![9.0, 9.0], vec![25.0, 1.0]]);
        let n_dom = 32;
        let quant = Quantizer::new(0.0, 32.0, n_dom);
        let hist = equi_width(n_dom, 4); // widths: 8 levels = 8.0 real units
        let scheme = GlobalScheme::new(hist.clone(), quant.clone(), 2);
        let qr: Vec<PointId> = (0u32..3).map(PointId::from).collect();
        let m2 = m2_metric(&scheme, &ds, &qr);
        let f_prime = f_prime_array(&ds, &quant, &qr);
        let m3_levels = m3_metric(&hist, &f_prime);
        // Level width (u−l) = 7 vs real width 8.0: M3 counts levels, M2 counts
        // real units of (u−l+1)·step. Convert: real_width = (levels+1)·step.
        // Check the exact relationship per bucket instead of a fudge factor:
        let step = quant.step();
        let mut m3_real = 0.0;
        for (b_idx, (l, u)) in hist.buckets().enumerate() {
            let w_real = ((u - l + 1) as f64) * step;
            let weight: u64 = f_prime[l as usize..=u as usize].iter().sum();
            m3_real += weight as f64 * w_real * w_real;
            let _ = b_idx;
        }
        assert!(
            (m2 - m3_real).abs() / m3_real.max(1.0) < 0.01,
            "m2={m2} m3_real={m3_real}"
        );
        assert!(m3_levels > 0.0);
    }

    #[test]
    fn f_prime_counts_coordinates() {
        let ds = Dataset::from_rows(&[vec![0.5, 0.5], vec![0.5, 2.5]]);
        let quant = Quantizer::new(0.0, 4.0, 4);
        let f = f_prime_array(&ds, &quant, &[PointId(0), PointId(1)]);
        assert_eq!(f, vec![3, 0, 1, 0]);
    }

    #[test]
    fn tighter_histogram_never_increases_m1() {
        let (ds, _, qc) = fig5_world();
        let quant = Quantizer::new(0.0, 32.0, 32);
        let cached: HashSet<PointId> = (0u32..6).map(PointId::from).collect();
        let coarse = GlobalScheme::new(equi_width(32, 2), quant.clone(), 2);
        let fine = GlobalScheme::new(equi_width(32, 32), quant, 2);
        let m_coarse = m1_metric(&coarse, &ds, std::slice::from_ref(&qc), &cached, 2);
        let m_fine = m1_metric(&fine, &ds, &[qc], &cached, 2);
        assert!(m_fine <= m_coarse, "fine {m_fine} > coarse {m_coarse}");
    }
}
