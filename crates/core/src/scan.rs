//! Blocked compact scan: bound whole blocks of candidates per pass.
//!
//! Phase 2 of Algorithm 1 walks every candidate's τ-bit codes and recomputes
//! the per-bucket interval distances scalar-wise, per candidate. The PQ
//! fast-scan playbook (André, "Exploiting Modern Hardware for
//! High-Dimensional Nearest Neighbor Search") maps directly onto our
//! bit-packed codes and splits that work in two:
//!
//! 1. **Once per query** — precompute, for every dimension `j` and every
//!    bucket `b`, the `(lb², ub²)` contribution of `q[j]` against bucket
//!    `b`'s real interval ([`QueryTables`]). The interval math runs `d·nb`
//!    times instead of `d·|C|` times.
//! 2. **Per block of candidates** — store resident codes transposed
//!    (dimension-major, [`BlockedCodes`]) so one pass per dimension extracts
//!    a whole block's codes with word-parallel shifts/masks and accumulates
//!    table entries into per-lane running sums ([`scan_slots`]). The inner
//!    table-gather loop has a runtime-detected AVX2 path
//!    (`_mm256_i32gather_pd`) with a scalar-blocked fallback.
//!
//! ## Layout
//!
//! Slots are grouped into blocks of [`LANES`] lanes. Within a block the
//! words are **dimension-major**: dimension `j`'s row packs the block's
//! `LANES` codes contiguously at τ bits each (same packing rule as
//! [`crate::codes::pack_codes`], applied across lanes instead of across
//! dimensions):
//!
//! ```text
//! row-major (PackedCodes)             blocked/transposed (BlockedCodes)
//! slot0: |c00|c01|c02|...|c0,d-1|     dim0: |c00|c10|c20|...|c(L-1),0|
//! slot1: |c10|c11|c12|...|c1,d-1|     dim1: |c01|c11|c21|...|c(L-1),1|
//!  ...                                 ...        (one block, L lanes)
//! ```
//!
//! With `LANES = 64` a block's row is exactly `τ` words — the transpose is
//! the *same bits* reshaped, zero padding for every τ (row-major padding is
//! per point, blocked padding only in the final partial block).
//!
//! ## Why the bounds stay bit-exact
//!
//! Table entries are computed by the same [`interval_contrib`] the scalar
//! [`crate::bounds::BoundsAcc`] path uses, and every kernel accumulates a
//! candidate's terms **per lane in dimension-ascending order** — the exact
//! addition sequence of the scalar path. Vectorization happens *across
//! candidates* (one f64 accumulator per lane), never across dimensions, so
//! f64 non-associativity never enters: `scan_slots` output is bit-identical
//! to `ApproxScheme::bounds`, and the AVX2 gather path is bit-identical to
//! the scalar-blocked fallback (per-lane adds are independent). The
//! equivalence battery in `crates/core/tests/scan_equivalence.rs` enforces
//! this with `f64::to_bits` comparisons.

use std::sync::OnceLock;

use crate::bounds::{interval_contrib, DistBounds};
use crate::codes::{pack_codes, PackedCodes};

/// Lanes (candidate slots) per block. 64 makes every dimension row exactly
/// τ words: `64·τ` bits per row for any τ in `[1, 32]`.
pub const LANES: usize = 64;

/// Minimum candidates resident in one block before the whole-block kernel
/// pays for itself; sparser blocks go through the per-lane table path
/// (which is bit-identical, so this threshold is a pure perf knob).
const MIN_BLOCK_GROUP: usize = 8;

/// Per-dimension bucket intervals a scheme exposes for table precompute.
///
/// `Shared` — one interval table for every dimension (global-histogram
/// schemes); `PerDim` — dimension `j` has its own table (individual-histogram
/// schemes, possibly ragged). Schemes without per-dimension bucket structure
/// (the multi-dimensional scheme) return `None` from
/// [`crate::scheme::ApproxScheme::scan_intervals`] and keep the scalar path.
#[derive(Debug, Clone, Copy)]
pub enum ScanIntervals<'a> {
    /// Every dimension shares one bucket → `[lo, hi]` table.
    Shared(&'a [(f32, f32)]),
    /// `tables[j]` is dimension `j`'s bucket → `[lo, hi]` table.
    PerDim(&'a [Vec<(f32, f32)>]),
}

impl ScanIntervals<'_> {
    /// Bucket count of dimension `j`.
    #[inline]
    fn buckets(&self, j: usize) -> usize {
        match self {
            ScanIntervals::Shared(t) => t.len(),
            ScanIntervals::PerDim(t) => t[j].len(),
        }
    }

    /// Interval of bucket `code` on dimension `j`.
    #[inline]
    pub fn interval(&self, j: usize, code: u32) -> (f32, f32) {
        match self {
            ScanIntervals::Shared(t) => t[code as usize],
            ScanIntervals::PerDim(t) => t[j][code as usize],
        }
    }

    /// Dimension `j`'s full interval table, contiguous.
    #[inline]
    fn row(&self, j: usize) -> &[(f32, f32)] {
        match self {
            ScanIntervals::Shared(t) => t,
            ScanIntervals::PerDim(t) => &t[j],
        }
    }
}

/// Per-query bucket-distance tables: for each dimension `j` and bucket `b`,
/// the `(lb², ub²)` contribution of `q[j]` against bucket `b`'s interval.
///
/// Built once per query (cost `O(d·nb)`), then every candidate's bounds are
/// `d` table-gathers instead of `d` interval computations. Rows are padded
/// to a uniform `stride` (the max bucket count over dimensions) so kernels
/// index with one multiply.
#[derive(Default)]
pub struct QueryTables {
    d: usize,
    stride: usize,
    lb: Vec<f64>,
    ub: Vec<f64>,
}

impl QueryTables {
    /// Build the tables for query `q` against a scheme's bucket intervals.
    pub fn build(q: &[f32], intervals: &ScanIntervals<'_>) -> Self {
        Self::build_with(q, intervals, Simd::Auto)
    }

    /// [`QueryTables::build`] with an explicit SIMD selection — the
    /// equivalence tests force each path and compare outputs bitwise. The
    /// table entries are independent (pure elementwise interval math), so
    /// vectorizing the build across buckets cannot change a single bit.
    pub fn build_with(q: &[f32], intervals: &ScanIntervals<'_>, simd: Simd) -> Self {
        let mut tables = Self::default();
        tables.rebuild(q, intervals, simd);
        tables
    }

    /// Refill `self` for a new query, reusing the table storage. Repeated
    /// per-query builds through one buffer skip the two multi-hundred-KB
    /// allocations (and their page faults) that a fresh [`QueryTables::build`]
    /// pays; the resulting entries are identical.
    pub fn rebuild(&mut self, q: &[f32], intervals: &ScanIntervals<'_>, simd: Simd) {
        let d = q.len();
        let stride = (0..d).map(|j| intervals.buckets(j)).max().unwrap_or(0);
        assert!(
            stride > 0 && stride <= i32::MAX as usize,
            "bucket count {stride} unusable for table scan"
        );
        self.d = d;
        self.stride = stride;
        // Size the storage without re-zeroing on reuse: every entry below a
        // row's bucket count is overwritten by the fill, and entries at or
        // beyond it are never gathered (codes index below the bucket count),
        // so stale padding from a previous query is unobservable.
        let len = d * stride;
        if self.lb.len() != len {
            self.lb.clear();
            self.lb.resize(len, 0.0);
            self.ub.clear();
            self.ub.resize(len, 0.0);
        }
        let use_avx2 = simd.use_avx2();
        for (j, &qj) in q.iter().enumerate() {
            let buckets = intervals.row(j);
            let nb = buckets.len();
            let row_lb = &mut self.lb[j * stride..j * stride + nb];
            let row_ub = &mut self.ub[j * stride..j * stride + nb];
            #[cfg(target_arch = "x86_64")]
            if use_avx2 {
                unsafe { fill_row_avx2(qj, buckets, row_lb, row_ub) };
                continue;
            }
            #[cfg(not(target_arch = "x86_64"))]
            let _ = use_avx2;
            fill_row_scalar(qj, buckets, row_lb, row_ub);
        }
    }

    /// Dimensionality the tables were built for.
    #[inline]
    pub fn dim(&self) -> usize {
        self.d
    }

    /// Row stride (padded bucket count).
    #[inline]
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Bound a single candidate through the tables (the per-lane fallback
    /// for sparse blocks). Accumulates in dimension-ascending order — the
    /// same f64 addition sequence as `ApproxScheme::bounds`, hence
    /// bit-identical output.
    #[inline]
    pub fn lane_bounds(&self, codes: impl Iterator<Item = u32>) -> DistBounds {
        let mut lb_sq = 0.0f64;
        let mut ub_sq = 0.0f64;
        for (j, code) in codes.enumerate() {
            let at = j * self.stride + code as usize;
            lb_sq += self.lb[at];
            ub_sq += self.ub[at];
        }
        DistBounds {
            lb: lb_sq.sqrt(),
            ub: ub_sq.sqrt(),
        }
    }
}

/// Cache-resident codes in blocked, dimension-major (transposed) layout —
/// the storage the whole-block kernels scan. See the module docs for the
/// word order (pinned by known-answer tests).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockedCodes {
    d: usize,
    tau: u32,
    lanes: usize,
    /// Words per dimension row = ⌈lanes·τ / 64⌉.
    wpr: usize,
    /// `blocks · d · wpr` words; block `b`, dim `j` row starts at
    /// `(b·d + j)·wpr`.
    words: Vec<u64>,
}

impl BlockedCodes {
    /// Standard layout: [`LANES`] lanes per block.
    pub fn new(d: usize, tau: u32) -> Self {
        Self::with_lanes(d, tau, LANES)
    }

    /// Custom lanes-per-block (tests exercise ragged/odd block sizes; the
    /// serving path always uses [`LANES`]).
    pub fn with_lanes(d: usize, tau: u32, lanes: usize) -> Self {
        assert!((1..=32).contains(&tau), "tau must be in [1, 32]");
        assert!(d > 0 && lanes > 0);
        Self {
            d,
            tau,
            lanes,
            wpr: (lanes * tau as usize).div_ceil(64),
            words: Vec::new(),
        }
    }

    /// Transpose an entire row-major container (slot `i` ↦ lane `i`).
    pub fn from_packed(pc: &PackedCodes) -> Self {
        let mut s = Self::new(pc.dim(), pc.tau());
        for slot in 0..pc.len() {
            s.set_lane(slot, pc.decode(slot));
        }
        s
    }

    #[inline]
    pub fn dim(&self) -> usize {
        self.d
    }

    #[inline]
    pub fn tau(&self) -> u32 {
        self.tau
    }

    /// Lanes per block.
    #[inline]
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Words per dimension row.
    #[inline]
    pub fn words_per_row(&self) -> usize {
        self.wpr
    }

    /// Slots currently addressable (whole blocks; grows on `set_lane`).
    #[inline]
    pub fn capacity_slots(&self) -> usize {
        (self.words.len() / (self.d * self.wpr)) * self.lanes
    }

    /// Total payload bytes of the container.
    #[inline]
    pub fn total_bytes(&self) -> usize {
        self.words.len() * 8
    }

    /// Dimension `j`'s packed code row of block `block`.
    #[inline]
    pub fn row(&self, block: usize, j: usize) -> &[u64] {
        let at = (block * self.d + j) * self.wpr;
        &self.words[at..at + self.wpr]
    }

    /// Grow storage (zero-filled whole blocks) to cover `slot`.
    fn ensure_slot(&mut self, slot: usize) {
        let blocks_needed = slot / self.lanes + 1;
        let words_needed = blocks_needed * self.d * self.wpr;
        if self.words.len() < words_needed {
            self.words.resize(words_needed, 0);
        }
    }

    /// Write (or overwrite — slots are reused on eviction) one candidate's
    /// codes into its lane across all dimension rows.
    pub fn set_lane(&mut self, slot: usize, codes: impl ExactSizeIterator<Item = u32>) {
        debug_assert_eq!(codes.len(), self.d);
        self.ensure_slot(slot);
        let tau = self.tau as usize;
        let mask = code_mask(self.tau);
        let lane = slot % self.lanes;
        let block = slot / self.lanes;
        let bit = lane * tau;
        let w = bit / 64;
        let shift = bit % 64;
        let spills = shift + tau > 64;
        for (j, code) in codes.enumerate() {
            debug_assert!(self.tau == 32 || u64::from(code) <= mask);
            let at = (block * self.d + j) * self.wpr;
            let row = &mut self.words[at..at + self.wpr];
            row[w] = (row[w] & !(mask << shift)) | ((code as u64) << shift);
            if spills {
                // shift + τ > 64 with τ ≤ 32 forces shift ≥ 33, so
                // `64 - shift` is always a partial shift (< 32). Same
                // invariant as `codes::pack_codes`.
                debug_assert!(shift > 32);
                let hi_bits = 64 - shift;
                row[w + 1] = (row[w + 1] & !(mask >> hi_bits)) | ((code as u64) >> hi_bits);
            }
        }
    }

    /// Extract one code: dimension `j` of the candidate in `slot`.
    #[inline]
    pub fn code(&self, slot: usize, j: usize) -> u32 {
        let row = self.row(slot / self.lanes, j);
        extract_lane(row, self.tau, slot % self.lanes)
    }

    /// Decode a candidate's full code sequence (dimension order).
    #[inline]
    pub fn lane_codes(&self, slot: usize) -> LaneIter<'_> {
        debug_assert!(slot < self.capacity_slots());
        LaneIter {
            codes: self,
            slot,
            j: 0,
        }
    }

    /// Reconstruct the row-major packed words of `slot` — exactly what
    /// `pack_codes` would produce for the same code sequence, so
    /// `ApproxScheme::bounds`/`error_norm_sq` can run against a transposed
    /// store unchanged.
    pub fn gather_point_words(&self, slot: usize, out: &mut Vec<u64>) {
        out.clear();
        pack_codes(self.lane_codes(slot), self.tau, out);
    }
}

/// Iterator over one lane's `d` codes (see [`BlockedCodes::lane_codes`]).
pub struct LaneIter<'a> {
    codes: &'a BlockedCodes,
    slot: usize,
    j: usize,
}

impl Iterator for LaneIter<'_> {
    type Item = u32;

    #[inline]
    fn next(&mut self) -> Option<u32> {
        if self.j == self.codes.d {
            return None;
        }
        let c = self.codes.code(self.slot, self.j);
        self.j += 1;
        Some(c)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.codes.d - self.j;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for LaneIter<'_> {}

#[inline]
fn code_mask(tau: u32) -> u64 {
    if tau == 32 {
        u32::MAX as u64
    } else {
        (1u64 << tau) - 1
    }
}

/// Extract lane `l`'s τ-bit code from a packed dimension row.
#[inline]
fn extract_lane(row: &[u64], tau: u32, l: usize) -> u32 {
    let bit = l * tau as usize;
    let w = bit / 64;
    let shift = bit % 64;
    let mut v = row[w] >> shift;
    if shift + tau as usize > 64 {
        debug_assert!(shift > 32);
        v |= row[w + 1] << (64 - shift);
    }
    (v & code_mask(tau)) as u32
}

/// Word-parallel row decode: unpack `n` lanes' codes from one dimension row
/// with a single sequential bit walk.
#[inline]
fn decode_row(row: &[u64], tau: u32, n: usize, out: &mut [u32]) {
    let t = tau as usize;
    let mask = code_mask(tau);
    let mut bit = 0usize;
    for o in out.iter_mut().take(n) {
        let w = bit >> 6;
        let shift = bit & 63;
        let mut v = row[w] >> shift;
        if shift + t > 64 {
            v |= row[w + 1] << (64 - shift);
        }
        *o = (v & mask) as u32;
        bit += t;
    }
}

/// Kernel selection for the table-gather inner loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Simd {
    /// Runtime feature detection (AVX2 when the CPU has it), overridable
    /// with `HC_SCAN_SIMD=off` in the environment.
    #[default]
    Auto,
    /// Force the scalar-blocked fallback (reference for SIMD equivalence).
    Scalar,
    /// Force the AVX2 path; panics if the CPU lacks AVX2. Test-facing.
    ForceAvx2,
}

/// Whether this CPU supports the AVX2 gather path.
#[inline]
pub fn avx2_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// `HC_SCAN_SIMD=off` (or `0`/`scalar`) disables the SIMD path for
/// `Simd::Auto` callers — the forced-scalar leg of the CI equivalence gate.
fn simd_env_disabled() -> bool {
    static DISABLED: OnceLock<bool> = OnceLock::new();
    *DISABLED.get_or_init(|| {
        std::env::var("HC_SCAN_SIMD")
            .map(|v| matches!(v.as_str(), "off" | "0" | "scalar"))
            .unwrap_or(false)
    })
}

impl Simd {
    /// Resolve to "use the AVX2 kernel?" for this process.
    #[inline]
    pub fn use_avx2(self) -> bool {
        match self {
            Simd::Auto => avx2_available() && !simd_env_disabled(),
            Simd::Scalar => false,
            Simd::ForceAvx2 => {
                assert!(avx2_available(), "ForceAvx2 on a CPU without AVX2");
                true
            }
        }
    }

    /// Label for metrics/bench output: which kernel `Auto` resolves to.
    pub fn label(self) -> &'static str {
        if self.use_avx2() {
            "avx2"
        } else {
            "scalar-blocked"
        }
    }
}

/// Reusable buffers for [`scan_slots`] so the per-query hot path never
/// allocates.
#[derive(Default)]
pub struct ScanScratch {
    codes: Vec<u32>,
    lb_sq: Vec<f64>,
    ub_sq: Vec<f64>,
    pairs: Vec<(u32, u32)>,
}

/// Fill one dimension's table row via [`interval_contrib`] — the reference
/// for the vectorized fill below.
#[inline]
fn fill_row_scalar(q: f32, buckets: &[(f32, f32)], row_lb: &mut [f64], row_ub: &mut [f64]) {
    for (b, &(lo, hi)) in buckets.iter().enumerate() {
        let (l, u) = interval_contrib(q, lo, hi);
        row_lb[b] = l;
        row_ub[b] = u;
    }
}

/// Vectorized row fill: 4 buckets per iteration, each lane evaluating
/// [`interval_contrib`] with the same f64 operation sequence (sub → abs →
/// min/max → mul, then a mask-select for the inside-interval case), so the
/// stored entries are bit-identical to the scalar fill. This matters at
/// small candidate sets, where the `d·nb` build cost rivals the scan
/// itself.
///
/// # Safety
/// Caller must ensure AVX2 is available. `row_lb`/`row_ub` must be at least
/// `buckets.len()` long (sliced so by the caller).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn fill_row_avx2(q: f32, buckets: &[(f32, f32)], row_lb: &mut [f64], row_ub: &mut [f64]) {
    use std::arch::x86_64::*;
    let n = buckets.len();
    let chunks = n / 4;
    let qv = _mm256_set1_pd(f64::from(q));
    let qs = _mm_set1_ps(q);
    let abs_mask = _mm256_castsi256_pd(_mm256_set1_epi64x(i64::MAX));
    let ptr = buckets.as_ptr() as *const f32;
    for c in 0..chunks {
        // Deinterleave 4 (lo, hi) pairs into lo/hi lanes.
        let v0 = _mm_loadu_ps(ptr.add(c * 8)); // lo0 hi0 lo1 hi1
        let v1 = _mm_loadu_ps(ptr.add(c * 8 + 4)); // lo2 hi2 lo3 hi3
        let los = _mm_shuffle_ps::<0b10_00_10_00>(v0, v1);
        let his = _mm_shuffle_ps::<0b11_01_11_01>(v0, v1);
        // `q < lo || q > hi` is an f32 comparison in the scalar path;
        // compare in f32 here too (f64 would agree — the widening is exact
        // — but this keeps the correspondence obvious).
        let outside32 = _mm_or_ps(_mm_cmplt_ps(qs, los), _mm_cmpgt_ps(qs, his));
        let outside = _mm256_cvtps_pd_mask(outside32);
        let lo_d = _mm256_cvtps_pd(los);
        let hi_d = _mm256_cvtps_pd(his);
        let dl = _mm256_and_pd(_mm256_sub_pd(qv, lo_d), abs_mask);
        let du = _mm256_and_pd(_mm256_sub_pd(qv, hi_d), abs_mask);
        let far = _mm256_max_pd(dl, du);
        let near = _mm256_min_pd(dl, du);
        let ub = _mm256_mul_pd(far, far);
        // near² is discarded (masked to +0.0) inside the interval, exactly
        // the scalar branch.
        let lb = _mm256_and_pd(outside, _mm256_mul_pd(near, near));
        _mm256_storeu_pd(row_lb.as_mut_ptr().add(c * 4), lb);
        _mm256_storeu_pd(row_ub.as_mut_ptr().add(c * 4), ub);
    }
    for b in chunks * 4..n {
        let (lo, hi) = *buckets.get_unchecked(b);
        let (l, u) = interval_contrib(q, lo, hi);
        *row_lb.get_unchecked_mut(b) = l;
        *row_ub.get_unchecked_mut(b) = u;
    }
}

/// Widen a 4-lane f32 comparison mask to 4 f64 lanes (all-ones or all-zero
/// per lane; `cvtps_pd` on a mask would not preserve the bit pattern).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[inline]
unsafe fn _mm256_cvtps_pd_mask(m: std::arch::x86_64::__m128) -> std::arch::x86_64::__m256d {
    use std::arch::x86_64::*;
    // Sign-extend each 32-bit lane mask to 64 bits.
    _mm256_castsi256_pd(_mm256_cvtepi32_epi64(_mm_castps_si128(m)))
}

/// Accumulate one dimension's table entries into every lane's running sums.
/// Scalar-blocked fallback; bit-identical to the AVX2 path because each
/// lane's accumulator is independent.
#[inline]
fn gather_add_scalar(
    codes: &[u32],
    lb_row: &[f64],
    ub_row: &[f64],
    lb: &mut [f64],
    ub: &mut [f64],
) {
    for l in 0..codes.len() {
        let c = codes[l] as usize;
        lb[l] += lb_row[c];
        ub[l] += ub_row[c];
    }
}

/// AVX2 table-gather: 4 f64 lanes per `_mm256_i32gather_pd`, scalar tail in
/// the same lane order.
///
/// # Safety
/// Caller must ensure AVX2 is available and every code indexes within the
/// table rows (guaranteed by the encoder: codes < bucket count ≤ stride).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn gather_add_avx2(
    codes: &[u32],
    lb_row: &[f64],
    ub_row: &[f64],
    lb: &mut [f64],
    ub: &mut [f64],
) {
    use std::arch::x86_64::*;
    let n = codes.len();
    let chunks = n / 4;
    for c in 0..chunks {
        let at = c * 4;
        let idx = _mm_loadu_si128(codes.as_ptr().add(at) as *const __m128i);
        let lb_g = _mm256_i32gather_pd::<8>(lb_row.as_ptr(), idx);
        let ub_g = _mm256_i32gather_pd::<8>(ub_row.as_ptr(), idx);
        let lb_acc = _mm256_loadu_pd(lb.as_ptr().add(at));
        let ub_acc = _mm256_loadu_pd(ub.as_ptr().add(at));
        _mm256_storeu_pd(lb.as_mut_ptr().add(at), _mm256_add_pd(lb_acc, lb_g));
        _mm256_storeu_pd(ub.as_mut_ptr().add(at), _mm256_add_pd(ub_acc, ub_g));
    }
    for l in chunks * 4..n {
        let c = *codes.get_unchecked(l) as usize;
        *lb.get_unchecked_mut(l) += *lb_row.get_unchecked(c);
        *ub.get_unchecked_mut(l) += *ub_row.get_unchecked(c);
    }
}

/// Bound one lane through the tables with the lane's bit geometry hoisted:
/// within a block, a lane's bit offset is the same in every dimension row,
/// so the word index, shift, and straddle test are loop-invariant — the
/// per-dimension work collapses to one strided load, a fixed shift+mask,
/// and two table adds. Accumulation order matches [`QueryTables::lane_bounds`]
/// term for term, so the result is bit-identical.
fn lane_bounds_hoisted(tables: &QueryTables, codes: &BlockedCodes, slot: usize) -> DistBounds {
    debug_assert_eq!(tables.d, codes.d);
    let lanes = codes.lanes;
    let t = codes.tau as usize;
    let bit = (slot % lanes) * t;
    let w = bit >> 6;
    let shift = bit & 63;
    let straddle = shift + t > 64;
    let mask = code_mask(codes.tau);
    let base = (slot / lanes) * codes.d * codes.wpr;
    let words = &codes.words[base..base + codes.d * codes.wpr];
    let stride = tables.stride;
    let mut lb_sq = 0.0f64;
    let mut ub_sq = 0.0f64;
    let mut at = w;
    for j in 0..codes.d {
        let mut v = words[at] >> shift;
        if straddle {
            v |= words[at + 1] << (64 - shift);
        }
        let k = j * stride + (v & mask) as usize;
        lb_sq += tables.lb[k];
        ub_sq += tables.ub[k];
        at += codes.wpr;
    }
    DistBounds {
        lb: lb_sq.sqrt(),
        ub: ub_sq.sqrt(),
    }
}

/// Bound all `n_lanes` leading lanes of `block`: per dimension, decode the
/// row word-parallel, then gather-add table entries into per-lane sums.
fn scan_block(
    tables: &QueryTables,
    codes: &BlockedCodes,
    block: usize,
    n_lanes: usize,
    scratch: &mut ScanScratch,
    use_avx2: bool,
) {
    debug_assert_eq!(tables.d, codes.d);
    scratch.codes.resize(n_lanes, 0);
    scratch.lb_sq.clear();
    scratch.lb_sq.resize(n_lanes, 0.0);
    scratch.ub_sq.clear();
    scratch.ub_sq.resize(n_lanes, 0.0);
    for j in 0..codes.d {
        let row = codes.row(block, j);
        decode_row(row, codes.tau, n_lanes, &mut scratch.codes);
        let lb_row = &tables.lb[j * tables.stride..(j + 1) * tables.stride];
        let ub_row = &tables.ub[j * tables.stride..(j + 1) * tables.stride];
        #[cfg(target_arch = "x86_64")]
        if use_avx2 {
            // SAFETY: `use_avx2` implies runtime AVX2 support; codes come
            // from the encoder, hence < bucket count ≤ table stride.
            unsafe {
                gather_add_avx2(
                    &scratch.codes,
                    lb_row,
                    ub_row,
                    &mut scratch.lb_sq,
                    &mut scratch.ub_sq,
                );
            }
            continue;
        }
        #[cfg(not(target_arch = "x86_64"))]
        let _ = use_avx2;
        gather_add_scalar(
            &scratch.codes,
            lb_row,
            ub_row,
            &mut scratch.lb_sq,
            &mut scratch.ub_sq,
        );
    }
}

/// Bound an arbitrary set of resident candidates through the blocked store.
///
/// `slots` pairs a storage slot with the caller's output index; `out[idx]`
/// receives that candidate's bounds. Candidates are grouped by block: groups
/// covering a full lane prefix run the whole-block kernel, everything else
/// the per-lane table path — both bit-identical to `ApproxScheme::bounds`,
/// so the grouping heuristic can never change results.
pub fn scan_slots(
    tables: &QueryTables,
    codes: &BlockedCodes,
    slots: &[(u32, u32)],
    out: &mut [DistBounds],
    scratch: &mut ScanScratch,
    simd: Simd,
) {
    let use_avx2 = simd.use_avx2();
    let lanes = codes.lanes;
    scratch.pairs.clear();
    scratch.pairs.extend_from_slice(slots);
    scratch.pairs.sort_unstable();
    // Borrow the sort buffer back out so `scratch` stays free for the
    // block kernel inside the loop.
    let pairs = std::mem::take(&mut scratch.pairs);
    let mut at = 0;
    while at < pairs.len() {
        let block = pairs[at].0 as usize / lanes;
        let mut end = at + 1;
        while end < pairs.len() && pairs[end].0 as usize / lanes == block {
            end += 1;
        }
        let group = &pairs[at..end];
        // The whole-block kernel pays off only when the group is a full lane
        // prefix (entry `i` in lane `i` — whole-cache scans, freshly packed
        // segments): one word-parallel decode then a SIMD-width gather-add.
        // Scattered hits go lane-at-a-time instead — each lane's bit offset
        // is then constant across dimensions, so the per-dimension extraction
        // is a fixed shift+mask over rows the prefix walk keeps in L1, which
        // measures faster than decoding lanes nobody asked about.
        let full_prefix = group.len() >= MIN_BLOCK_GROUP
            && group
                .iter()
                .enumerate()
                .all(|(i, &(slot, _))| slot as usize % lanes == i);
        if full_prefix {
            scan_block(tables, codes, block, group.len(), scratch, use_avx2);
            for &(slot, idx) in group {
                let l = slot as usize % lanes;
                out[idx as usize] = DistBounds {
                    lb: scratch.lb_sq[l].sqrt(),
                    ub: scratch.ub_sq[l].sqrt(),
                };
            }
        } else {
            for &(slot, idx) in group {
                out[idx as usize] = lane_bounds_hoisted(tables, codes, slot as usize);
            }
        }
        at = end;
    }
    scratch.pairs = pairs;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::BoundsAcc;

    /// Deterministic pseudo-random codes without pulling in a RNG.
    fn synth_codes(d: usize, nb: usize, seed: u64) -> Vec<u32> {
        (0..d)
            .map(|j| {
                let h = (seed ^ (j as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
                    .wrapping_mul(0xBF58_476D_1CE4_E5B9);
                ((h >> 33) % nb as u64) as u32
            })
            .collect()
    }

    fn synth_intervals(nb: usize) -> Vec<(f32, f32)> {
        (0..nb)
            .map(|b| (b as f32 * 0.5 - 3.0, b as f32 * 0.5 - 2.5))
            .collect()
    }

    #[test]
    fn known_answer_word_order() {
        // 4 lanes, τ=4, d=2 → one word per row. Lane codes pack
        // little-endian within the row word, lane 0 in the lowest bits:
        // dim0 codes [1,3,5,7] → 0x7531, dim1 codes [2,4,6,8] → 0x8642.
        let mut bc = BlockedCodes::with_lanes(2, 4, 4);
        for (slot, cs) in [[1u32, 2], [3, 4], [5, 6], [7, 8]].iter().enumerate() {
            bc.set_lane(slot, cs.iter().copied());
        }
        assert_eq!(bc.words_per_row(), 1);
        assert_eq!(bc.row(0, 0), &[0x7531]);
        assert_eq!(bc.row(0, 1), &[0x8642]);
        // A fifth slot opens block 1; its rows sit after block 0's d rows.
        bc.set_lane(4, [0xFu32, 0x9].iter().copied());
        assert_eq!(bc.row(1, 0), &[0xF]);
        assert_eq!(bc.row(1, 1), &[0x9]);
        assert_eq!(bc.capacity_slots(), 8);
    }

    #[test]
    fn known_answer_word_order_straddling() {
        // 64 lanes, τ=5 → 320-bit rows (5 words); lane 12 starts at bit 60
        // of word 0 and spills 1 bit into word 1.
        let mut bc = BlockedCodes::new(1, 5);
        bc.set_lane(12, [0b10111u32].iter().copied());
        let row = bc.row(0, 0);
        assert_eq!(row[0], 0b0111u64 << 60);
        assert_eq!(row[1], 0b1);
        assert_eq!(bc.code(12, 0), 0b10111);
    }

    #[test]
    fn set_lane_overwrites_cleanly() {
        // Slot reuse (LRU eviction) must not leak stale bits — including on
        // the word-straddling spill path.
        let mut bc = BlockedCodes::new(3, 7);
        bc.set_lane(9, [0x7Fu32, 0x7F, 0x7F].iter().copied());
        bc.set_lane(10, [0x55u32, 0x2A, 0x11].iter().copied());
        bc.set_lane(9, [0u32, 1, 2].iter().copied());
        assert_eq!(bc.lane_codes(9).collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!(
            bc.lane_codes(10).collect::<Vec<_>>(),
            vec![0x55, 0x2A, 0x11]
        );
    }

    #[test]
    fn round_trips_all_taus_with_ragged_blocks() {
        for tau in 1..=32u32 {
            let nb_mask = if tau == 32 { u32::MAX } else { (1 << tau) - 1 };
            for lanes in [1usize, 3, 8, 64] {
                let d = 5;
                let mut bc = BlockedCodes::with_lanes(d, tau, lanes);
                let pts: Vec<Vec<u32>> = (0..7)
                    .map(|p| {
                        (0..d)
                            .map(|j| ((p as u64 * 2654435761 + j as u64 * 40503) as u32) & nb_mask)
                            .collect()
                    })
                    .collect();
                for (slot, p) in pts.iter().enumerate() {
                    bc.set_lane(slot, p.iter().copied());
                }
                for (slot, p) in pts.iter().enumerate() {
                    assert_eq!(
                        &bc.lane_codes(slot).collect::<Vec<_>>(),
                        p,
                        "tau={tau} lanes={lanes} slot={slot}"
                    );
                }
            }
        }
    }

    #[test]
    fn from_packed_and_gather_round_trip() {
        let d = 9;
        let tau = 11;
        let mut pc = PackedCodes::new(d, tau);
        for p in 0..70usize {
            pc.push((0..d).map(|j| ((p * 131 + j * 17) % (1 << tau)) as u32));
        }
        let bc = BlockedCodes::from_packed(&pc);
        let mut words = Vec::new();
        for slot in 0..pc.len() {
            assert_eq!(
                bc.lane_codes(slot).collect::<Vec<_>>(),
                pc.decode(slot).collect::<Vec<_>>()
            );
            bc.gather_point_words(slot, &mut words);
            assert_eq!(&words[..], pc.point_words(slot), "slot {slot}");
        }
    }

    #[test]
    fn tables_match_scalar_contributions() {
        let nb = 16;
        let real = synth_intervals(nb);
        let q = [0.25f32, -1.5, 2.0];
        let tables = QueryTables::build(&q, &ScanIntervals::Shared(&real));
        let codes = [3u32, 0, 15];
        // Reference: BoundsAcc in dim order.
        let mut acc = BoundsAcc::new();
        for (j, &c) in codes.iter().enumerate() {
            let (lo, hi) = real[c as usize];
            acc.add(q[j], lo, hi);
        }
        let want = acc.finish();
        let got = tables.lane_bounds(codes.iter().copied());
        assert_eq!(want.lb.to_bits(), got.lb.to_bits());
        assert_eq!(want.ub.to_bits(), got.ub.to_bits());
    }

    /// The vectorized table fill must reproduce the scalar fill bit for
    /// bit — including inside-interval zeros, ragged (non-multiple-of-4)
    /// bucket counts, and intervals on both sides of the query.
    #[test]
    fn vectorized_table_build_is_bit_identical() {
        if !avx2_available() {
            return;
        }
        for nb in [1usize, 2, 3, 4, 5, 7, 8, 13, 64, 255, 256] {
            let real = synth_intervals(nb);
            // Queries below, inside, between, and above the intervals.
            let q: Vec<f32> = (0..9).map(|j| j as f32 * 7.7 - 5.0).collect();
            let scalar = QueryTables::build_with(&q, &ScanIntervals::Shared(&real), Simd::Scalar);
            let simd = QueryTables::build_with(&q, &ScanIntervals::Shared(&real), Simd::ForceAvx2);
            assert_eq!(scalar.d, simd.d);
            assert_eq!(scalar.stride, simd.stride);
            for (i, (a, b)) in scalar.lb.iter().zip(&simd.lb).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "nb={nb} lb[{i}]");
            }
            for (i, (a, b)) in scalar.ub.iter().zip(&simd.ub).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "nb={nb} ub[{i}]");
            }
        }
    }

    #[test]
    fn scan_slots_matches_lane_bounds_dense_and_sparse() {
        let d = 17;
        let tau = 6u32;
        let nb = 40; // fewer buckets than 2^τ — tables are sized by nb
        let real = synth_intervals(nb);
        let q: Vec<f32> = (0..d).map(|j| (j as f32 * 0.37) - 2.0).collect();
        let tables = QueryTables::build(&q, &ScanIntervals::Shared(&real));
        let mut bc = BlockedCodes::new(d, tau);
        let n = 150; // spans 3 blocks, last one ragged
        for slot in 0..n {
            bc.set_lane(slot, synth_codes(d, nb, slot as u64).into_iter());
        }
        // Dense group in block 0, sparse singletons elsewhere, unsorted.
        let picks: Vec<u32> = vec![140, 3, 77, 1, 0, 63, 9, 4, 5, 6, 7, 8, 2, 130];
        let slots: Vec<(u32, u32)> = picks
            .iter()
            .enumerate()
            .map(|(i, &s)| (s, i as u32))
            .collect();
        let mut out = vec![DistBounds::UNKNOWN; picks.len()];
        let mut scratch = ScanScratch::default();
        for simd in [Simd::Scalar, Simd::Auto] {
            scan_slots(&tables, &bc, &slots, &mut out, &mut scratch, simd);
            for (i, &slot) in picks.iter().enumerate() {
                let want = tables.lane_bounds(bc.lane_codes(slot as usize));
                assert_eq!(
                    out[i].lb.to_bits(),
                    want.lb.to_bits(),
                    "slot {slot} {simd:?}"
                );
                assert_eq!(
                    out[i].ub.to_bits(),
                    want.ub.to_bits(),
                    "slot {slot} {simd:?}"
                );
            }
        }
    }

    #[test]
    fn simd_flag_resolution() {
        assert!(!Simd::Scalar.use_avx2());
        if avx2_available() {
            assert!(Simd::ForceAvx2.use_avx2());
        }
        assert_eq!(Simd::Scalar.label(), "scalar-blocked");
    }
}
