//! Lower/upper distance bounds between a query and a bucket-approximated
//! point (paper §3.2).
//!
//! For a candidate whose dimension `j` is known only to lie in the interval
//! `[l_j, u_j]`:
//!
//! * `dist⁺_q(c)² = Σ_j max(|q.j − l_j|, |q.j − u_j|)²` — the farthest corner,
//! * `dist⁻_q(c)² = Σ_j 0 if l_j ≤ q.j ≤ u_j else min(|q.j − l_j|, |q.j − u_j|)²`
//!   — the nearest face.
//!
//! These are the classic min/max distances from a point to an axis-aligned
//! rectangle; the paper's Lemma 1 additionally bounds the slack by the error
//! vector norm: `dist⁺_q(c) − dist_q(c) ≤ ||ε(c)||` with
//! `ε(c).j = u_j − l_j`.

/// Squared lower/upper distance bounds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistBounds {
    /// `dist⁻_q(c)` — never exceeds the exact distance.
    pub lb: f64,
    /// `dist⁺_q(c)` — never undercuts the exact distance.
    pub ub: f64,
}

impl DistBounds {
    /// The "unknown candidate" bounds used for cache misses in Algorithm 1
    /// line 4: `lb = 0`, `ub = +∞`.
    pub const UNKNOWN: DistBounds = DistBounds {
        lb: 0.0,
        ub: f64::INFINITY,
    };

    /// Width of the bound interval (∞ for unknown candidates).
    #[inline]
    pub fn slack(&self) -> f64 {
        self.ub - self.lb
    }

    /// Whether an exact distance is consistent with these bounds.
    #[inline]
    pub fn contains(&self, dist: f64) -> bool {
        self.lb <= dist && dist <= self.ub
    }
}

/// One dimension's `(lb², ub²)` contribution: query coordinate `q` against
/// the bucket's real interval `[lo, hi]`.
///
/// This is the single source of truth for per-dimension interval math: both
/// the scalar [`BoundsAcc`] path and the blocked-scan table precompute
/// ([`crate::scan::QueryTables`]) call it, which is what makes the two paths
/// bit-identical — they sum exactly the same f64 terms in the same
/// (dimension-ascending) order. The lower-bound term is `0.0` when `q` lies
/// inside the interval; adding `+0.0` to a non-negative partial sum is a
/// bit-level no-op, so the table path (which adds unconditionally) matches
/// the branchy path below.
#[inline]
pub fn interval_contrib(q: f32, lo: f32, hi: f32) -> (f64, f64) {
    debug_assert!(lo <= hi, "inverted interval [{lo}, {hi}]");
    let dl = (q as f64 - lo as f64).abs();
    let du = (q as f64 - hi as f64).abs();
    let far = dl.max(du);
    let lb = if q < lo || q > hi {
        let near = dl.min(du);
        near * near
    } else {
        0.0
    };
    (lb, far * far)
}

/// Accumulator for per-dimension interval contributions; finalize with
/// [`BoundsAcc::finish`].
#[derive(Debug, Clone, Copy, Default)]
pub struct BoundsAcc {
    lb_sq: f64,
    ub_sq: f64,
}

impl BoundsAcc {
    #[inline]
    pub fn new() -> Self {
        Self::default()
    }

    /// Add dimension `j`'s contribution given the query coordinate and the
    /// bucket's real interval `[lo, hi]`.
    #[inline]
    pub fn add(&mut self, q: f32, lo: f32, hi: f32) {
        let (lb, ub) = interval_contrib(q, lo, hi);
        self.ub_sq += ub;
        if lb != 0.0 {
            self.lb_sq += lb;
        }
    }

    /// Square-root both accumulators into final bounds.
    #[inline]
    pub fn finish(self) -> DistBounds {
        DistBounds {
            lb: self.lb_sq.sqrt(),
            ub: self.ub_sq.sqrt(),
        }
    }
}

/// Bounds of a query against a rectangle given as parallel `lo`/`hi` slices
/// (used by the multi-dimensional scheme and R-tree node pruning).
pub fn bounds_to_rect(q: &[f32], lo: &[f32], hi: &[f32]) -> DistBounds {
    debug_assert_eq!(q.len(), lo.len());
    debug_assert_eq!(q.len(), hi.len());
    let mut acc = BoundsAcc::new();
    for j in 0..q.len() {
        acc.add(q[j], lo[j], hi[j]);
    }
    acc.finish()
}

/// Squared minimum distance from `q` to the rectangle (fast path for tree
/// traversal where the upper bound is not needed).
#[inline]
pub fn min_dist_sq_to_rect(q: &[f32], lo: &[f32], hi: &[f32]) -> f64 {
    let mut acc = 0.0f64;
    for j in 0..q.len() {
        let v = q[j];
        let d = if v < lo[j] {
            (lo[j] - v) as f64
        } else if v > hi[j] {
            (v - hi[j]) as f64
        } else {
            0.0
        };
        acc += d * d;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::euclidean;

    #[test]
    fn paper_worked_example_p2() {
        // §3.2: q=(9,11), p2 rectangle ([8..15],[16..23]) →
        // ub = sqrt(max(1,6)² + max(5,12)²) = sqrt(36+144) = 13.416…
        // lb = sqrt(0 + 5²) = 5 (q inside [8,15] on dim 1).
        let mut acc = BoundsAcc::new();
        acc.add(9.0, 8.0, 15.0);
        acc.add(11.0, 16.0, 23.0);
        let b = acc.finish();
        assert!((b.ub - 180.0f64.sqrt()).abs() < 1e-9);
        assert!((b.lb - 5.0).abs() < 1e-9);
    }

    #[test]
    fn paper_worked_example_p3_pruned() {
        // p3 rectangle ([16..23],[24..31]) → lb = sqrt(7² + 13²) = 14.76 > 13.42.
        let b = bounds_to_rect(&[9.0, 11.0], &[16.0, 24.0], &[23.0, 31.0]);
        assert!((b.lb - (49.0f64 + 169.0).sqrt()).abs() < 1e-9);
        assert!(b.lb > 13.42);
    }

    #[test]
    fn bounds_sandwich_exact_distance() {
        // Any point inside the rectangle must have lb <= dist <= ub.
        let q = [0.3, -1.2, 4.0];
        let lo = [0.0, -2.0, 3.0];
        let hi = [1.0, -1.0, 5.0];
        let b = bounds_to_rect(&q, &lo, &hi);
        for p in [[0.0, -2.0, 3.0], [1.0, -1.0, 5.0], [0.5, -1.5, 4.2]] {
            let d = euclidean(&q, &p);
            assert!(b.contains(d), "dist {d} outside [{}, {}]", b.lb, b.ub);
        }
    }

    #[test]
    fn query_inside_rect_has_zero_lower_bound() {
        let b = bounds_to_rect(&[0.5, 0.5], &[0.0, 0.0], &[1.0, 1.0]);
        assert_eq!(b.lb, 0.0);
        assert!(b.ub > 0.0);
    }

    #[test]
    fn degenerate_rect_gives_exact_distance() {
        let q = [3.0, 4.0];
        let p = [0.0, 0.0];
        let b = bounds_to_rect(&q, &p, &p);
        assert!((b.lb - 5.0).abs() < 1e-9);
        assert!((b.ub - 5.0).abs() < 1e-9);
        assert!(b.slack().abs() < 1e-9);
    }

    #[test]
    fn min_dist_sq_matches_bounds_lb() {
        let q = [2.0, -3.0, 0.0, 9.0];
        let lo = [0.0, 0.0, -1.0, 1.0];
        let hi = [1.0, 1.0, 1.0, 2.0];
        let b = bounds_to_rect(&q, &lo, &hi);
        let md = min_dist_sq_to_rect(&q, &lo, &hi);
        assert!((b.lb * b.lb - md).abs() < 1e-9);
    }

    #[test]
    fn unknown_bounds_never_prune() {
        let b = DistBounds::UNKNOWN;
        assert_eq!(b.lb, 0.0);
        assert!(b.ub.is_infinite());
        assert!(b.contains(123.0));
    }
}
