//! Bit-packed code storage (paper §3.1, footnote 5).
//!
//! An approximate point is a sequence of `d` τ-bit bucket codes packed into
//! `⌈d·τ / 64⌉` consecutive 64-bit words — "to achieve a compact cache, we
//! pack the bit-string encoding of each point into one or multiple consecutive
//! words in memory". Codes may straddle word boundaries; extraction uses only
//! shifts and masks.

/// Number of 64-bit words needed for `d` codes of `tau` bits each.
#[inline]
pub fn words_per_point(d: usize, tau: u32) -> usize {
    (d * tau as usize).div_ceil(64)
}

/// Append `d` codes of `tau` bits into `out` (which receives exactly
/// `words_per_point(d, tau)` words).
///
/// # Panics
/// Debug-asserts every code fits in `tau` bits and `1 <= tau <= 32`.
pub fn pack_codes(codes: impl ExactSizeIterator<Item = u32>, tau: u32, out: &mut Vec<u64>) {
    debug_assert!((1..=32).contains(&tau));
    let d = codes.len();
    let start = out.len();
    out.resize(start + words_per_point(d, tau), 0);
    let words = &mut out[start..];
    let mut bit: usize = 0;
    for code in codes {
        debug_assert!(
            tau == 32 || code < (1u32 << tau),
            "code {code} exceeds {tau} bits"
        );
        let w = bit / 64;
        let shift = bit % 64;
        words[w] |= (code as u64) << shift;
        let spill = shift + tau as usize;
        if spill > 64 {
            // `spill > 64` with `tau <= 32` forces `shift >= 33`, so
            // `64 - shift` is in [1, 31] — never a full-width (UB) shift.
            // `spill == 64` (code ends exactly at the word boundary) takes
            // the no-spill path above. Pinned by `boundary_alignments_*`.
            debug_assert!(shift > 32, "spill implies shift >= 33, got {shift}");
            words[w + 1] |= (code as u64) >> (64 - shift);
        }
        bit += tau as usize;
    }
}

/// Extract the `i`-th τ-bit code from a packed word slice.
#[inline]
pub fn unpack_code(words: &[u64], tau: u32, i: usize) -> u32 {
    let bit = i * tau as usize;
    let w = bit / 64;
    let shift = bit % 64;
    let mask = if tau == 32 {
        u32::MAX as u64
    } else {
        (1u64 << tau) - 1
    };
    let mut v = words[w] >> shift;
    if shift + tau as usize > 64 {
        // Same invariant as the pack spill path: `shift >= 33` here, so
        // `64 - shift` is a partial shift. If `shift` could be 0 this
        // expression would be a full-width shift — UB — which is why the
        // condition is strict `> 64`: a code ending exactly on the word
        // boundary (`shift + tau == 64`) is served whole from `words[w]`.
        debug_assert!(shift > 32, "spill implies shift >= 33, got {shift}");
        v |= words[w + 1] << (64 - shift);
    }
    (v & mask) as u32
}

/// Iterator over the `d` codes of one packed point.
pub struct CodeIter<'a> {
    words: &'a [u64],
    tau: u32,
    d: usize,
    i: usize,
}

impl<'a> CodeIter<'a> {
    pub fn new(words: &'a [u64], tau: u32, d: usize) -> Self {
        debug_assert!(words.len() >= words_per_point(d, tau));
        Self {
            words,
            tau,
            d,
            i: 0,
        }
    }
}

impl Iterator for CodeIter<'_> {
    type Item = u32;

    #[inline]
    fn next(&mut self) -> Option<u32> {
        if self.i == self.d {
            return None;
        }
        let c = unpack_code(self.words, self.tau, self.i);
        self.i += 1;
        Some(c)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.d - self.i;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for CodeIter<'_> {}

/// A dense, indexable container of packed approximate points sharing one
/// `(d, τ)` configuration — the storage behind the compact cache and the
/// VA-file's approximation array.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedCodes {
    d: usize,
    tau: u32,
    wpp: usize,
    words: Vec<u64>,
}

impl PackedCodes {
    pub fn new(d: usize, tau: u32) -> Self {
        assert!((1..=32).contains(&tau), "tau must be in [1, 32]");
        assert!(d > 0);
        Self {
            d,
            tau,
            wpp: words_per_point(d, tau),
            words: Vec::new(),
        }
    }

    /// Pre-allocate room for `n` points.
    pub fn with_capacity(d: usize, tau: u32, n: usize) -> Self {
        let mut s = Self::new(d, tau);
        s.words.reserve(n * s.wpp);
        s
    }

    #[inline]
    pub fn dim(&self) -> usize {
        self.d
    }

    #[inline]
    pub fn tau(&self) -> u32 {
        self.tau
    }

    /// Packed words per point.
    #[inline]
    pub fn words_per_point(&self) -> usize {
        self.wpp
    }

    /// Bytes one approximate point occupies (word-aligned, as cached).
    #[inline]
    pub fn bytes_per_point(&self) -> usize {
        self.wpp * 8
    }

    /// Number of stored points.
    #[inline]
    pub fn len(&self) -> usize {
        self.words.len().checked_div(self.wpp).unwrap_or(0)
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Append one point's codes; returns its slot index.
    pub fn push(&mut self, codes: impl ExactSizeIterator<Item = u32>) -> usize {
        debug_assert_eq!(codes.len(), self.d);
        let slot = self.len();
        pack_codes(codes, self.tau, &mut self.words);
        slot
    }

    /// The packed words of point `slot`.
    #[inline]
    pub fn point_words(&self, slot: usize) -> &[u64] {
        &self.words[slot * self.wpp..(slot + 1) * self.wpp]
    }

    /// Decode point `slot` into its code sequence.
    #[inline]
    pub fn decode(&self, slot: usize) -> CodeIter<'_> {
        CodeIter::new(self.point_words(slot), self.tau, self.d)
    }

    /// Total payload bytes of the container.
    pub fn total_bytes(&self) -> usize {
        self.words.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(d: usize, tau: u32, codes: &[u32]) {
        assert_eq!(codes.len(), d);
        let mut pc = PackedCodes::new(d, tau);
        let slot = pc.push(codes.iter().copied());
        let back: Vec<u32> = pc.decode(slot).collect();
        assert_eq!(back, codes, "d={d} tau={tau}");
    }

    #[test]
    fn round_trips_across_word_boundaries() {
        // τ=10, d=13 → 130 bits → codes straddle both word boundaries.
        let codes: Vec<u32> = (0..13).map(|i| (i * 97 + 5) % 1024).collect();
        round_trip(13, 10, &codes);
    }

    #[test]
    fn round_trips_all_taus() {
        for tau in 1..=32u32 {
            let max = if tau == 32 {
                u32::MAX
            } else {
                (1u32 << tau) - 1
            };
            let codes: Vec<u32> = (0..7u64)
                .map(|i| (i.wrapping_mul(2654435761) as u32) & max)
                .collect();
            round_trip(7, tau, &codes);
        }
    }

    #[test]
    fn paper_fig5_packing() {
        // p1' = |00|10| : two 2-bit codes 0b00 and 0b10.
        let mut pc = PackedCodes::new(2, 2);
        pc.push([0b00u32, 0b10].into_iter());
        assert_eq!(pc.decode(0).collect::<Vec<_>>(), vec![0, 2]);
        // 4 bits packed into one word; the cache of Fig. 5c is 16 bits for 4 pts.
        assert_eq!(pc.words_per_point(), 1);
    }

    #[test]
    fn words_per_point_matches_footnote5() {
        // Paper footnote 5: an approximate point occupies ⌈d·τ / L_word⌉ words.
        assert_eq!(words_per_point(150, 10), 24); // 1500 bits → 24 words
        assert_eq!(words_per_point(960, 10), 150);
        assert_eq!(words_per_point(64, 1), 1);
        assert_eq!(words_per_point(65, 1), 2);
    }

    #[test]
    fn container_indexes_multiple_points() {
        let mut pc = PackedCodes::with_capacity(5, 7, 3);
        let pts: Vec<Vec<u32>> = (0..3)
            .map(|p| (0..5).map(|j| ((p * 31 + j * 17) % 128) as u32).collect())
            .collect();
        for p in &pts {
            pc.push(p.iter().copied());
        }
        assert_eq!(pc.len(), 3);
        for (i, p) in pts.iter().enumerate() {
            assert_eq!(&pc.decode(i).collect::<Vec<_>>(), p);
        }
    }

    #[test]
    fn unpack_individual_codes() {
        let mut words = Vec::new();
        pack_codes([3u32, 1, 2, 0, 3].into_iter(), 2, &mut words);
        assert_eq!(unpack_code(&words, 2, 0), 3);
        assert_eq!(unpack_code(&words, 2, 3), 0);
        assert_eq!(unpack_code(&words, 2, 4), 3);
    }

    #[test]
    fn bytes_accounting() {
        let pc = PackedCodes::new(150, 10);
        assert_eq!(pc.bytes_per_point(), 192); // 24 words × 8
    }

    /// Exhaustive boundary battery: for every τ, enough codes that the bit
    /// offset cycles through every alignment mod 64 — so every `shift+τ == 64`
    /// exact-fit and every `shift+τ > 64` spill case is exercised — with
    /// all-ones codes (worst case for bit leakage between neighbors).
    #[test]
    fn boundary_alignments_all_taus_max_codes() {
        for tau in 1..=32u32 {
            let max = if tau == 32 {
                u32::MAX
            } else {
                (1u32 << tau) - 1
            };
            // The alignment pattern repeats every lcm(τ,64)/τ ≤ 64 codes;
            // 130 codes covers two full cycles plus change.
            let d = 130;
            let codes: Vec<u32> = (0..d)
                .map(|i| if i % 2 == 0 { max } else { max / 3 })
                .collect();
            let mut words = Vec::new();
            pack_codes(codes.iter().copied(), tau, &mut words);
            for (i, &c) in codes.iter().enumerate() {
                assert_eq!(unpack_code(&words, tau, i), c, "tau={tau} i={i}");
            }
        }
    }

    /// `shift + τ == 64`: the code ends exactly at the word boundary and
    /// must be served whole from one word (no spill read of `words[w+1]`).
    #[test]
    fn exact_word_boundary_fit_reads_one_word() {
        for tau in [1u32, 2, 4, 8, 16, 32] {
            let per_word = (64 / tau) as usize;
            let max = if tau == 32 {
                u32::MAX
            } else {
                (1u32 << tau) - 1
            };
            // Exactly one word of codes: the last one has shift+τ == 64.
            let codes = vec![max; per_word];
            let mut words = Vec::new();
            pack_codes(codes.iter().copied(), tau, &mut words);
            assert_eq!(words.len(), 1, "tau={tau}: no second word allocated");
            assert_eq!(words[0], u64::MAX, "tau={tau}: word fully populated");
            assert_eq!(unpack_code(&words, tau, per_word - 1), max);
        }
    }

    #[test]
    fn tau_32_full_width_codes() {
        // τ=32 is the mask special case ((1<<32) would overflow u32 math):
        // two codes per word, u32::MAX must survive packing untouched.
        let codes = [u32::MAX, 0, 0xDEAD_BEEF, u32::MAX, 1];
        let mut words = Vec::new();
        pack_codes(codes.iter().copied(), 32, &mut words);
        assert_eq!(words.len(), 3);
        assert_eq!(words[0], u64::from(u32::MAX)); // code 1 (= 0) fills the high half
        for (i, &c) in codes.iter().enumerate() {
            assert_eq!(unpack_code(&words, 32, i), c);
        }
    }

    /// Every word-straddling (spill) position for every straddling τ: pack a
    /// single max code at each alignment and check nothing leaks into
    /// neighboring zero codes.
    #[test]
    fn spill_positions_do_not_leak() {
        for tau in [3u32, 5, 7, 11, 13, 17, 23, 29, 31] {
            let max = (1u32 << tau) - 1;
            let d = 200usize;
            for hot in 0..d.min(70) {
                let codes: Vec<u32> = (0..d).map(|i| if i == hot { max } else { 0 }).collect();
                let mut words = Vec::new();
                pack_codes(codes.iter().copied(), tau, &mut words);
                for (i, &c) in codes.iter().enumerate() {
                    assert_eq!(unpack_code(&words, tau, i), c, "tau={tau} hot={hot} i={i}");
                }
            }
        }
    }
}
