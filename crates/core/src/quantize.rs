//! Discretization of floating-point dimension values onto the integer domain
//! `[0 .. N_dom)` over which histograms are defined.
//!
//! The paper's histograms operate on a discrete value domain (Definition 6,
//! with footnote 7: "we can extend this method to handle other value domains,
//! e.g., by applying discretization on floating-point values"). A
//! [`Quantizer`] performs that discretization with uniform levels over the
//! dataset's global `[min, max]` range, and — crucially for correctness —
//! maps each discrete *level* (and hence each histogram bucket) back to a
//! closed real interval that is guaranteed to contain every original value
//! mapped into it. Distance bounds computed against those real intervals are
//! therefore valid with respect to exact `f32` distances.

/// A discrete level in `[0 .. N_dom)`.
pub type Level = u32;

/// Uniform scalar quantizer over a real range.
#[derive(Debug, Clone, PartialEq)]
pub struct Quantizer {
    min: f32,
    max: f32,
    n_dom: u32,
    step: f64,
}

impl Quantizer {
    /// Default domain size used across the library. 1024 levels keeps the
    /// optimal-histogram DP (Algorithm 2, `O(N_dom² · B)` worst case) well
    /// within interactive build times while leaving room for the paper's
    /// τ sweep (τ ≤ 10 yields non-trivial buckets at this domain size).
    pub const DEFAULT_N_DOM: u32 = 1024;

    /// Create a quantizer over `[min, max]` with `n_dom` levels.
    ///
    /// # Panics
    /// Panics if `min >= max`, the bounds are not finite, or `n_dom == 0`.
    pub fn new(min: f32, max: f32, n_dom: u32) -> Self {
        assert!(min.is_finite() && max.is_finite(), "range must be finite");
        assert!(min < max, "empty quantizer range [{min}, {max}]");
        assert!(n_dom > 0, "domain size must be positive");
        let step = (max as f64 - min as f64) / n_dom as f64;
        Self {
            min,
            max,
            n_dom,
            step,
        }
    }

    /// Build from a dataset's global value range with the default domain size.
    pub fn for_range((min, max): (f32, f32)) -> Self {
        Self::new(min, max, Self::DEFAULT_N_DOM)
    }

    /// Number of discrete levels `N_dom`.
    #[inline]
    pub fn n_dom(&self) -> u32 {
        self.n_dom
    }

    /// Lower end of the real range.
    #[inline]
    pub fn min(&self) -> f32 {
        self.min
    }

    /// Upper end of the real range.
    #[inline]
    pub fn max(&self) -> f32 {
        self.max
    }

    /// Width of one level in real units.
    #[inline]
    pub fn step(&self) -> f64 {
        self.step
    }

    /// Map a real value to its level. Values outside `[min, max]` clamp to the
    /// boundary levels (robustness for queries that lie slightly outside the
    /// data range).
    #[inline]
    pub fn level(&self, v: f32) -> Level {
        if v <= self.min {
            return 0;
        }
        if v >= self.max {
            return self.n_dom - 1;
        }
        let idx = ((v as f64 - self.min as f64) / self.step) as u32;
        idx.min(self.n_dom - 1)
    }

    /// The closed real interval `[lo, hi]` covered by the level range
    /// `[lo_level ..= hi_level]`.
    ///
    /// The returned interval is *conservative*: every value that quantizes
    /// into the range is contained in it (including `max` itself for the top
    /// level). Histogram buckets use this to derive sound distance bounds.
    #[inline]
    pub fn levels_to_real(&self, lo_level: Level, hi_level: Level) -> (f32, f32) {
        debug_assert!(lo_level <= hi_level && hi_level < self.n_dom);
        let lo = self.min as f64 + self.step * lo_level as f64;
        let hi = self.min as f64 + self.step * (hi_level as f64 + 1.0);
        // Round outward so f64→f32 rounding can never shrink the interval.
        let lo = next_down_f32(lo as f32, self.min);
        let hi = next_up_f32(hi as f32, self.max);
        (lo, hi)
    }

    /// Histogram-domain frequency array `F[x]`: how many dimension values of
    /// the flat buffer map to each level. This is the paper's `F[x]` used by
    /// equi-depth and V-optimal construction (§3.3.1).
    pub fn frequency_array(&self, flat_values: &[f32]) -> Vec<u64> {
        let mut freq = vec![0u64; self.n_dom as usize];
        for &v in flat_values {
            freq[self.level(v) as usize] += 1;
        }
        freq
    }
}

/// One step toward negative infinity, clamped at `floor`.
#[inline]
fn next_down_f32(v: f32, floor: f32) -> f32 {
    let stepped = f32::from_bits(if v > 0.0 {
        v.to_bits() - 1
    } else if v < 0.0 {
        v.to_bits() + 1
    } else {
        (-f32::MIN_POSITIVE).to_bits()
    });
    stepped.max(floor)
}

/// One step toward positive infinity, clamped at `ceil`.
#[inline]
fn next_up_f32(v: f32, ceil: f32) -> f32 {
    let stepped = f32::from_bits(if v > 0.0 {
        v.to_bits() + 1
    } else if v < 0.0 {
        v.to_bits() - 1
    } else {
        f32::MIN_POSITIVE.to_bits()
    });
    stepped.min(ceil)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_partition_the_range() {
        let q = Quantizer::new(0.0, 32.0, 4);
        assert_eq!(q.level(0.0), 0);
        assert_eq!(q.level(7.9), 0);
        assert_eq!(q.level(8.0), 1);
        assert_eq!(q.level(23.9), 2);
        assert_eq!(q.level(31.9), 3);
        assert_eq!(q.level(32.0), 3); // max clamps to top level
    }

    #[test]
    fn out_of_range_values_clamp() {
        let q = Quantizer::new(0.0, 1.0, 10);
        assert_eq!(q.level(-5.0), 0);
        assert_eq!(q.level(5.0), 9);
    }

    #[test]
    fn real_interval_contains_all_values_of_its_levels() {
        let q = Quantizer::new(-1.0, 1.0, 16);
        let mut v = -1.0f32;
        while v <= 1.0 {
            let lvl = q.level(v);
            let (lo, hi) = q.levels_to_real(lvl, lvl);
            assert!(
                lo <= v && v <= hi,
                "value {v} outside level {lvl} interval [{lo}, {hi}]"
            );
            v += 0.00731;
        }
    }

    #[test]
    fn wider_level_ranges_nest() {
        let q = Quantizer::new(0.0, 100.0, 32);
        let (lo_a, hi_a) = q.levels_to_real(4, 7);
        let (lo_b, hi_b) = q.levels_to_real(4, 20);
        assert!(lo_b <= lo_a && hi_b >= hi_a);
    }

    #[test]
    fn frequency_array_counts_every_value() {
        let q = Quantizer::new(0.0, 4.0, 4);
        let freq = q.frequency_array(&[0.1, 0.2, 1.5, 3.9, 2.5, 2.6]);
        assert_eq!(freq, vec![2, 1, 2, 1]);
        assert_eq!(freq.iter().sum::<u64>(), 6);
    }

    #[test]
    fn paper_example_histogram_domain() {
        // Figure 5: values in [0..31], τ=2, B=4 equi-width buckets of width 8.
        let q = Quantizer::new(0.0, 32.0, 32);
        assert_eq!(q.level(2.0), 2);
        assert_eq!(q.level(20.0), 20);
        let (lo, hi) = q.levels_to_real(0, 7);
        assert!(lo <= 0.0 && hi >= 8.0 - 1e-3);
    }

    #[test]
    #[should_panic(expected = "empty quantizer range")]
    fn rejects_degenerate_range() {
        let _ = Quantizer::new(1.0, 1.0, 4);
    }
}
