//! Per-dimension normalization (paper §3.1: "if the dataset has different
//! domain sizes for different dimensions, then we may apply normalization to
//! scale each dimension").
//!
//! A global histogram assumes all dimensions share one value domain. When
//! they do not (e.g. one feature in `[0, 1]` and another in `[0, 10⁴]`), the
//! global histogram wastes all its buckets on the wide dimension. A
//! [`Normalizer`] affinely maps every dimension onto `[0, 1]` — both dataset
//! and queries — after which the global-histogram machinery applies
//! unchanged. Euclidean *order* is generally not preserved by anisotropic
//! scaling, so this is a modeling choice made once, up front: the normalized
//! space IS the search space (exactly how the paper's feature pipelines
//! z-scale descriptors before indexing).

use crate::dataset::Dataset;

/// Affine per-dimension map onto `[0, 1]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Normalizer {
    /// Per-dimension `(offset, inverse-width)` pairs: `v ↦ (v − off) · inv`.
    params: Vec<(f32, f32)>,
}

impl Normalizer {
    /// Fit to a dataset's per-dimension ranges. `Dataset::per_dim_ranges`
    /// widens degenerate (constant) dimensions by an epsilon, so every
    /// dimension has positive width and constant dimensions map to ≈0.
    pub fn fit(dataset: &Dataset) -> Self {
        let params = dataset
            .per_dim_ranges()
            .into_iter()
            .map(|(lo, hi)| (lo, 1.0 / (hi - lo)))
            .collect();
        Self { params }
    }

    /// Dimensionality this normalizer was fitted for.
    pub fn dim(&self) -> usize {
        self.params.len()
    }

    /// Normalize one point in place.
    pub fn apply_in_place(&self, point: &mut [f32]) {
        debug_assert_eq!(point.len(), self.dim());
        for (v, &(off, inv)) in point.iter_mut().zip(&self.params) {
            *v = ((*v - off) * inv).clamp(0.0, 1.0);
        }
    }

    /// Normalize one point into a new vector (for queries at search time).
    pub fn apply(&self, point: &[f32]) -> Vec<f32> {
        let mut out = point.to_vec();
        self.apply_in_place(&mut out);
        out
    }

    /// Normalize a whole dataset (the offline step before building the
    /// quantizer / histograms / indexes).
    pub fn normalize_dataset(&self, dataset: &Dataset) -> Dataset {
        assert_eq!(dataset.dim(), self.dim());
        let mut out = Dataset::with_dim(dataset.dim());
        let mut row = vec![0.0f32; dataset.dim()];
        for (_, p) in dataset.iter() {
            row.copy_from_slice(p);
            self.apply_in_place(&mut row);
            out.push(&row);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quantize::Quantizer;

    fn skewed_dataset() -> Dataset {
        // Dim 0 in [0, 1], dim 1 in [0, 10_000].
        Dataset::from_rows(&[
            vec![0.0, 0.0],
            vec![0.25, 2_500.0],
            vec![0.5, 5_000.0],
            vec![1.0, 10_000.0],
        ])
    }

    #[test]
    fn maps_every_dimension_onto_unit_interval() {
        let ds = skewed_dataset();
        let norm = Normalizer::fit(&ds);
        let nds = norm.normalize_dataset(&ds);
        let (lo, hi) = nds.value_range();
        assert!(lo >= 0.0 && hi <= 1.0);
        // Proportions survive: the midpoint stays the midpoint on both dims.
        let mid = nds.point(crate::dataset::PointId(2));
        assert!((mid[0] - 0.5).abs() < 1e-6);
        assert!((mid[1] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn queries_map_consistently_with_data() {
        let ds = skewed_dataset();
        let norm = Normalizer::fit(&ds);
        let q = norm.apply(&[0.5, 5_000.0]);
        let nds = norm.normalize_dataset(&ds);
        let p = nds.point(crate::dataset::PointId(2));
        assert!((q[0] - p[0]).abs() < 1e-6 && (q[1] - p[1]).abs() < 1e-6);
    }

    #[test]
    fn out_of_range_queries_clamp() {
        let ds = skewed_dataset();
        let norm = Normalizer::fit(&ds);
        let q = norm.apply(&[-5.0, 20_000.0]);
        assert_eq!(q, vec![0.0, 1.0]);
    }

    #[test]
    fn constant_dimension_maps_consistently() {
        let ds = Dataset::from_rows(&[vec![7.0, 1.0], vec![7.0, 2.0]]);
        let norm = Normalizer::fit(&ds);
        let a = norm.apply(&[7.0, 1.5]);
        let b = norm.apply(&[7.0, 1.0]);
        // A constant dimension maps every (in-range) value to the same spot.
        assert!((a[0] - b[0]).abs() < 1e-6);
        assert!((0.0..=1.0).contains(&a[0]));
    }

    #[test]
    fn normalization_restores_global_histogram_resolution() {
        // Without normalization, a global quantizer over [0, 10000] gives
        // dim 0 a single level; after normalization both dims use the full
        // level range.
        let ds = skewed_dataset();
        let quant_raw = Quantizer::for_range(ds.value_range());
        let spread_raw: Vec<u32> = ds.iter().map(|(_, p)| quant_raw.level(p[0])).collect();
        assert!(
            spread_raw.iter().all(|&l| l == 0),
            "dim 0 crushed to one level"
        );

        let norm = Normalizer::fit(&ds);
        let nds = norm.normalize_dataset(&ds);
        let quant = Quantizer::for_range(nds.value_range());
        let spread: Vec<u32> = nds.iter().map(|(_, p)| quant.level(p[0])).collect();
        let distinct: std::collections::HashSet<u32> = spread.into_iter().collect();
        assert!(
            distinct.len() >= 3,
            "normalized dim 0 should span many levels"
        );
    }
}
