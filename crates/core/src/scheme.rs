//! Approximation schemes: the bridge between histograms and the cache.
//!
//! A scheme knows how to (a) encode an exact point into packed τ-bit codes
//! and (b) turn those codes back into sound distance bounds against a query.
//! The three scheme families mirror the paper's histogram categories
//! (§3.1, §3.6.2):
//!
//! * [`GlobalScheme`] — one histogram `H` shared by every dimension (HC-*),
//! * [`IndividualScheme`] — a histogram `H_j` per dimension (iHC-*),
//! * [`MultiDimScheme`] — one spatial bucket id per point (mHC-R).
//!
//! All cache and query machinery is generic over [`ApproxScheme`], so a
//! single Algorithm 1 implementation serves every variant.

use crate::bounds::{BoundsAcc, DistBounds};
use crate::codes::{pack_codes, words_per_point, CodeIter};
use crate::histogram::multidim::MultiDimBuckets;
use crate::histogram::Histogram;
use crate::quantize::Quantizer;
use crate::scan::ScanIntervals;

/// Encode points to packed code words and derive distance bounds from them.
pub trait ApproxScheme: Send + Sync {
    /// Dimensionality of the points this scheme encodes.
    fn dim(&self) -> usize;

    /// Code length τ in bits per stored code.
    fn tau(&self) -> u32;

    /// Packed 64-bit words per approximate point.
    fn words_per_point(&self) -> usize;

    /// Append the packed encoding of `point` (exactly
    /// [`Self::words_per_point`] words) to `out`.
    fn encode_into(&self, point: &[f32], out: &mut Vec<u64>);

    /// Sound lower/upper distance bounds of the encoded candidate from `q`:
    /// `dist⁻_q(c) ≤ dist_q(c) ≤ dist⁺_q(c)` for every point that encodes to
    /// `words`.
    fn bounds(&self, q: &[f32], words: &[u64]) -> DistBounds;

    /// Squared error-vector norm `||ε(c)||²` (paper Definition 10) of the
    /// encoded candidate — the diagonal of its bounding rectangle.
    fn error_norm_sq(&self, words: &[u64]) -> f64;

    /// Bytes one cached approximate point occupies (word-aligned packing,
    /// paper footnote 5).
    fn bytes_per_point(&self) -> usize {
        self.words_per_point() * 8
    }

    /// Convenience: encode into a fresh buffer.
    fn encode(&self, point: &[f32]) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.words_per_point());
        self.encode_into(point, &mut out);
        out
    }

    /// Per-dimension bucket intervals for the blocked compact scan
    /// (`crate::scan`): `Some` when every code is a per-dimension bucket id
    /// whose interval can be tabulated per query, `None` for schemes without
    /// that structure (they keep the scalar [`Self::bounds`] path).
    fn scan_intervals(&self) -> Option<ScanIntervals<'_>> {
        None
    }
}

/// Global-histogram scheme: every dimension value is coded by one shared
/// histogram over the dataset-wide value domain (paper Definition 8).
pub struct GlobalScheme {
    dim: usize,
    tau: u32,
    quantizer: Quantizer,
    /// Dense level → bucket table for O(1) encoding.
    level_index: Vec<u32>,
    /// Per-bucket closed real intervals for sound bounds.
    real: Vec<(f32, f32)>,
    histogram: Histogram,
}

impl GlobalScheme {
    pub fn new(histogram: Histogram, quantizer: Quantizer, dim: usize) -> Self {
        assert_eq!(histogram.n_dom(), quantizer.n_dom(), "domain mismatch");
        assert!(dim > 0);
        let level_index = histogram.level_index();
        let real = histogram.real_buckets(&quantizer);
        Self {
            dim,
            tau: histogram.tau(),
            quantizer,
            level_index,
            real,
            histogram,
        }
    }

    /// The underlying histogram.
    pub fn histogram(&self) -> &Histogram {
        &self.histogram
    }

    /// The quantizer mapping real values onto the level domain.
    pub fn quantizer(&self) -> &Quantizer {
        &self.quantizer
    }

    #[inline]
    fn code_of(&self, v: f32) -> u32 {
        self.level_index[self.quantizer.level(v) as usize]
    }
}

impl ApproxScheme for GlobalScheme {
    fn dim(&self) -> usize {
        self.dim
    }

    fn tau(&self) -> u32 {
        self.tau
    }

    fn words_per_point(&self) -> usize {
        words_per_point(self.dim, self.tau)
    }

    fn encode_into(&self, point: &[f32], out: &mut Vec<u64>) {
        debug_assert_eq!(point.len(), self.dim);
        pack_codes(point.iter().map(|&v| self.code_of(v)), self.tau, out);
    }

    fn bounds(&self, q: &[f32], words: &[u64]) -> DistBounds {
        debug_assert_eq!(q.len(), self.dim);
        let mut acc = BoundsAcc::new();
        for (j, code) in CodeIter::new(words, self.tau, self.dim).enumerate() {
            let (lo, hi) = self.real[code as usize];
            acc.add(q[j], lo, hi);
        }
        acc.finish()
    }

    fn error_norm_sq(&self, words: &[u64]) -> f64 {
        CodeIter::new(words, self.tau, self.dim)
            .map(|code| {
                let (lo, hi) = self.real[code as usize];
                let w = (hi - lo) as f64;
                w * w
            })
            .sum()
    }

    fn scan_intervals(&self) -> Option<ScanIntervals<'_>> {
        Some(ScanIntervals::Shared(&self.real))
    }
}

/// Per-dimension histogram scheme (iHC-*): dimension `j` is coded by its own
/// histogram `H_j` and quantizer.
pub struct IndividualScheme {
    tau: u32,
    quantizers: Vec<Quantizer>,
    level_index: Vec<Vec<u32>>,
    real: Vec<Vec<(f32, f32)>>,
}

impl IndividualScheme {
    /// `histograms[j]` codes dimension `j` using `quantizers[j]`. The packed
    /// code width is the maximum τ over dimensions so decoding stays uniform.
    pub fn new(histograms: Vec<Histogram>, quantizers: Vec<Quantizer>) -> Self {
        assert!(!histograms.is_empty());
        assert_eq!(histograms.len(), quantizers.len());
        let tau = histograms.iter().map(|h| h.tau()).max().expect("non-empty");
        let mut level_index = Vec::with_capacity(histograms.len());
        let mut real = Vec::with_capacity(histograms.len());
        for (h, q) in histograms.iter().zip(quantizers.iter()) {
            assert_eq!(h.n_dom(), q.n_dom(), "domain mismatch");
            level_index.push(h.level_index());
            real.push(h.real_buckets(q));
        }
        Self {
            tau,
            quantizers,
            level_index,
            real,
        }
    }

    /// Total boundary-table space across all dimensions (Table 3 "Space").
    pub fn space_bytes(&self) -> usize {
        self.real.iter().map(|r| (r.len() + 1) * 4).sum()
    }
}

impl ApproxScheme for IndividualScheme {
    fn dim(&self) -> usize {
        self.quantizers.len()
    }

    fn tau(&self) -> u32 {
        self.tau
    }

    fn words_per_point(&self) -> usize {
        words_per_point(self.dim(), self.tau)
    }

    fn encode_into(&self, point: &[f32], out: &mut Vec<u64>) {
        debug_assert_eq!(point.len(), self.dim());
        let codes = point
            .iter()
            .enumerate()
            .map(|(j, &v)| self.level_index[j][self.quantizers[j].level(v) as usize]);
        pack_codes(codes, self.tau, out);
    }

    fn bounds(&self, q: &[f32], words: &[u64]) -> DistBounds {
        let mut acc = BoundsAcc::new();
        for (j, code) in CodeIter::new(words, self.tau, self.dim()).enumerate() {
            let (lo, hi) = self.real[j][code as usize];
            acc.add(q[j], lo, hi);
        }
        acc.finish()
    }

    fn error_norm_sq(&self, words: &[u64]) -> f64 {
        CodeIter::new(words, self.tau, self.dim())
            .enumerate()
            .map(|(j, code)| {
                let (lo, hi) = self.real[j][code as usize];
                let w = (hi - lo) as f64;
                w * w
            })
            .sum()
    }

    fn scan_intervals(&self) -> Option<ScanIntervals<'_>> {
        Some(ScanIntervals::PerDim(&self.real))
    }
}

/// Multi-dimensional bucket scheme (mHC-R): one bucket id per point, bounds
/// from the bucket's bounding rectangle.
pub struct MultiDimScheme {
    dim: usize,
    buckets: MultiDimBuckets,
}

impl MultiDimScheme {
    pub fn new(buckets: MultiDimBuckets) -> Self {
        Self {
            dim: buckets.dim(),
            buckets,
        }
    }

    pub fn buckets(&self) -> &MultiDimBuckets {
        &self.buckets
    }
}

impl ApproxScheme for MultiDimScheme {
    fn dim(&self) -> usize {
        self.dim
    }

    fn tau(&self) -> u32 {
        self.buckets.tau()
    }

    fn words_per_point(&self) -> usize {
        1 // a single ≤32-bit bucket id
    }

    fn encode_into(&self, point: &[f32], out: &mut Vec<u64>) {
        out.push(self.buckets.assign(point) as u64);
    }

    fn bounds(&self, q: &[f32], words: &[u64]) -> DistBounds {
        self.buckets.bounds(q, words[0] as u32)
    }

    fn error_norm_sq(&self, words: &[u64]) -> f64 {
        self.buckets.error_norm_sq(words[0] as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::euclidean;
    use crate::histogram::classic::equi_width;

    fn fig5_scheme() -> GlobalScheme {
        // Paper Figure 5: domain [0,32), τ=2, equi-width buckets of width 8.
        let q = Quantizer::new(0.0, 32.0, 32);
        GlobalScheme::new(equi_width(32, 4), q, 2)
    }

    #[test]
    fn fig5_encoding_matches_paper() {
        let s = fig5_scheme();
        let codes: Vec<u32> = CodeIter::new(&s.encode(&[2.0, 20.0]), 2, 2).collect();
        assert_eq!(codes, vec![0b00, 0b10]); // p1' = |00|10|
        let codes: Vec<u32> = CodeIter::new(&s.encode(&[26.0, 4.0]), 2, 2).collect();
        assert_eq!(codes, vec![0b11, 0b00]); // p4' = |11|00|
    }

    #[test]
    fn fig5_bounds_match_table1() {
        // Table 1 computes bounds on the *integer* value domain where bucket
        // [8..15] really ends at 15. Our real-valued bucket intervals are one
        // level wider ([8, 16)), so bounds are sound but up to one level-width
        // looser: p2' → paper [5.00 .. 13.42], ours [5.00 .. 14.77];
        // p3' → paper [14.76 .. 24.41], ours [≤14.77 .. ≤25.8].
        let s = fig5_scheme();
        let q = [9.0f32, 11.0];
        let b2 = s.bounds(&q, &s.encode(&[10.0, 16.0]));
        assert!((b2.lb - 5.0).abs() < 0.05, "lb {}", b2.lb);
        assert!(
            b2.ub >= 13.42 && b2.ub <= 13.42 + 2.0f32.hypot(1.0) as f64 + 0.05,
            "ub {}",
            b2.ub
        );
        let b3 = s.bounds(&q, &s.encode(&[19.0, 30.0]));
        assert!(
            b3.lb <= 14.76 + 0.05 && b3.lb >= 14.76 - 1.5,
            "lb {}",
            b3.lb
        );
        assert!(
            b3.ub >= 24.41 - 0.05 && b3.ub <= 24.41 + 1.5,
            "ub {}",
            b3.ub
        );
        // Both candidates' exact distances remain sandwiched.
        assert!(b2.contains(euclidean(&q, &[10.0, 16.0])));
        assert!(b3.contains(euclidean(&q, &[19.0, 30.0])));
    }

    #[test]
    fn global_bounds_sandwich_exact_distances() {
        let quant = Quantizer::new(-2.0, 2.0, 256);
        let s = GlobalScheme::new(equi_width(256, 16), quant, 4);
        let pts = [
            [0.1f32, -1.9, 1.5, 0.0],
            [2.0, 2.0, 2.0, 2.0],
            [-2.0, 0.33, -0.77, 1.99],
        ];
        let q = [0.5f32, 0.5, -0.5, -0.5];
        for p in &pts {
            let b = s.bounds(&q, &s.encode(p));
            let d = euclidean(&q, p);
            assert!(b.contains(d), "dist {d} not in [{}, {}]", b.lb, b.ub);
        }
    }

    #[test]
    fn lemma1_error_vector_inequality() {
        // dist⁺ − dist ≤ ||ε(c)|| for every encoded point (paper Lemma 1).
        let quant = Quantizer::new(0.0, 1.0, 64);
        let s = GlobalScheme::new(equi_width(64, 8), quant, 3);
        let q = [0.2f32, 0.9, 0.4];
        for p in [[0.0f32, 0.5, 1.0], [0.33, 0.33, 0.33], [0.9, 0.01, 0.77]] {
            let w = s.encode(&p);
            let b = s.bounds(&q, &w);
            let eps = s.error_norm_sq(&w).sqrt();
            let d = euclidean(&q, &p);
            assert!(b.ub - d <= eps + 1e-6, "slack {} > eps {eps}", b.ub - d);
        }
    }

    #[test]
    fn individual_scheme_uses_per_dim_domains() {
        // Dim 0 in [0,1], dim 1 in [100,200]: individual quantizers keep each
        // dimension's resolution; bounds remain sound.
        let h0 = equi_width(64, 8);
        let h1 = equi_width(64, 8);
        let q0 = Quantizer::new(0.0, 1.0, 64);
        let q1 = Quantizer::new(100.0, 200.0, 64);
        let s = IndividualScheme::new(vec![h0, h1], vec![q0, q1]);
        assert_eq!(s.dim(), 2);
        let p = [0.5f32, 150.0];
        let query = [0.25f32, 120.0];
        let b = s.bounds(&query, &s.encode(&p));
        assert!(b.contains(euclidean(&query, &p)));
        // An individual bucket on dim 0 is ~1/8 wide; on dim 1 ~12.5 wide.
        let eps_sq = s.error_norm_sq(&s.encode(&p));
        assert!(eps_sq > 100.0 / 64.0, "dim-1 width should dominate");
    }

    #[test]
    fn multidim_scheme_bounds_through_mbr() {
        let buckets = MultiDimBuckets::from_rects(&[
            (vec![0.0, 0.0], vec![1.0, 1.0]),
            (vec![5.0, 5.0], vec![6.0, 6.0]),
        ]);
        let s = MultiDimScheme::new(buckets);
        assert_eq!(s.tau(), 1);
        let p = [5.5f32, 5.5];
        let q = [0.0f32, 0.0];
        let w = s.encode(&p);
        assert_eq!(w[0], 1);
        let b = s.bounds(&q, &w);
        assert!(b.contains(euclidean(&q, &p)));
    }

    #[test]
    fn bytes_per_point_shrinks_with_tau() {
        let quant = Quantizer::new(0.0, 1.0, 1024);
        let d = 150;
        let fat = GlobalScheme::new(equi_width(1024, 1024), quant.clone(), d);
        let slim = GlobalScheme::new(equi_width(1024, 4), quant, d);
        assert_eq!(fat.tau(), 10);
        assert_eq!(slim.tau(), 2);
        assert!(slim.bytes_per_point() < fat.bytes_per_point());
        // Exact point: 600 bytes; τ=10 approx: 192 bytes; τ=2: 38 bytes rounded to words.
        assert_eq!(fat.bytes_per_point(), 192);
    }
}
