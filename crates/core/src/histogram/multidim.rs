//! Multi-dimensional histogram buckets (mHC-R, paper §3.6.2 and Appendix B).
//!
//! A multi-dimensional histogram partitions the *space* (not each axis) into
//! bounding rectangles; an approximate point is the identifier of the bucket
//! enclosing it — one code per point instead of one per dimension. The paper
//! derives the buckets from the leaf MBRs of an R-tree with `2^τ` leaves and
//! shows (Appendix B) that the curse of dimensionality makes the average
//! bucket side length `w_br ≥ (2/n)^{1/d}` — close to the full domain width in
//! high dimensions — so mHC-R produces near-useless bounds. We implement it
//! faithfully as the paper's negative baseline.
//!
//! This module only defines the bucket set; `hc-index`'s R-tree supplies the
//! rectangles via its `leaf_mbrs()`.

use crate::bounds::{bounds_to_rect, DistBounds};

/// A set of axis-aligned bucket rectangles in `d` dimensions.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiDimBuckets {
    d: usize,
    /// Flattened `lows[i*d .. (i+1)*d]` per rectangle.
    lows: Vec<f32>,
    highs: Vec<f32>,
}

impl MultiDimBuckets {
    /// Build from `(low, high)` rectangle pairs.
    ///
    /// # Panics
    /// Panics if rectangles are empty, dimensionally inconsistent, or
    /// inverted.
    pub fn from_rects(rects: &[(Vec<f32>, Vec<f32>)]) -> Self {
        assert!(!rects.is_empty(), "need at least one bucket rectangle");
        let d = rects[0].0.len();
        assert!(d > 0);
        let mut lows = Vec::with_capacity(rects.len() * d);
        let mut highs = Vec::with_capacity(rects.len() * d);
        for (i, (lo, hi)) in rects.iter().enumerate() {
            assert!(lo.len() == d && hi.len() == d, "rect {i} has wrong dim");
            for j in 0..d {
                assert!(lo[j] <= hi[j], "rect {i} inverted on dim {j}");
            }
            lows.extend_from_slice(lo);
            highs.extend_from_slice(hi);
        }
        Self { d, lows, highs }
    }

    #[inline]
    pub fn dim(&self) -> usize {
        self.d
    }

    /// Number of buckets.
    #[inline]
    pub fn len(&self) -> usize {
        self.lows.len() / self.d
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.lows.is_empty()
    }

    /// Code length: one `⌈log₂ len⌉`-bit code per point.
    pub fn tau(&self) -> u32 {
        let n = self.len() as u32;
        if n <= 1 {
            1
        } else {
            32 - (n - 1).leading_zeros()
        }
    }

    /// The rectangle of bucket `i` as `(lows, highs)` slices.
    #[inline]
    pub fn rect(&self, i: u32) -> (&[f32], &[f32]) {
        let i = i as usize;
        (
            &self.lows[i * self.d..(i + 1) * self.d],
            &self.highs[i * self.d..(i + 1) * self.d],
        )
    }

    /// Index of the first bucket containing `p`, if any. Construction from an
    /// R-tree over the dataset guarantees every *data* point is contained in
    /// some leaf MBR; arbitrary points may fall outside all buckets.
    pub fn find_containing(&self, p: &[f32]) -> Option<u32> {
        debug_assert_eq!(p.len(), self.d);
        'rect: for i in 0..self.len() {
            let (lo, hi) = self.rect(i as u32);
            for j in 0..self.d {
                if p[j] < lo[j] || p[j] > hi[j] {
                    continue 'rect;
                }
            }
            return Some(i as u32);
        }
        None
    }

    /// Bucket assignment for encoding: the containing bucket, falling back to
    /// the bucket whose rectangle is nearest (distance-bound soundness is then
    /// lost for that point, which cannot happen for dataset points).
    pub fn assign(&self, p: &[f32]) -> u32 {
        if let Some(i) = self.find_containing(p) {
            return i;
        }
        debug_assert!(false, "encoding a point outside every mHC-R bucket");
        let mut best = 0u32;
        let mut best_d = f64::INFINITY;
        for i in 0..self.len() as u32 {
            let (lo, hi) = self.rect(i);
            let d = crate::bounds::min_dist_sq_to_rect(p, lo, hi);
            if d < best_d {
                best_d = d;
                best = i;
            }
        }
        best
    }

    /// Distance bounds from a query to the bucket rectangle `code`.
    #[inline]
    pub fn bounds(&self, q: &[f32], code: u32) -> DistBounds {
        let (lo, hi) = self.rect(code);
        bounds_to_rect(q, lo, hi)
    }

    /// Squared error-vector norm of a bucket: `Σ_j (u_j − l_j)²`.
    pub fn error_norm_sq(&self, code: u32) -> f64 {
        let (lo, hi) = self.rect(code);
        lo.iter()
            .zip(hi.iter())
            .map(|(&l, &h)| {
                let w = (h - l) as f64;
                w * w
            })
            .sum()
    }

    /// Average bucket side width `w_br` (paper Appendix B): the mean, over all
    /// buckets and dimensions, of the side length.
    pub fn avg_side_width(&self) -> f64 {
        let total: f64 = self
            .lows
            .iter()
            .zip(self.highs.iter())
            .map(|(&l, &h)| (h - l) as f64)
            .sum();
        total / self.lows.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_buckets() -> MultiDimBuckets {
        MultiDimBuckets::from_rects(&[
            (vec![0.0, 0.0], vec![1.0, 1.0]),
            (vec![2.0, 2.0], vec![4.0, 5.0]),
        ])
    }

    #[test]
    fn containment_lookup() {
        let b = two_buckets();
        assert_eq!(b.find_containing(&[0.5, 0.5]), Some(0));
        assert_eq!(b.find_containing(&[3.0, 4.0]), Some(1));
        assert_eq!(b.find_containing(&[1.5, 1.5]), None);
    }

    #[test]
    fn tau_is_log2_of_bucket_count() {
        let b = two_buckets();
        assert_eq!(b.tau(), 1);
        let rects: Vec<_> = (0..5)
            .map(|i| (vec![i as f32], vec![i as f32 + 0.5]))
            .collect();
        assert_eq!(MultiDimBuckets::from_rects(&rects).tau(), 3);
    }

    #[test]
    fn bounds_are_rect_min_max_distances() {
        let b = two_buckets();
        let db = b.bounds(&[5.0, 5.0], 0);
        // Nearest corner of bucket 0 is (1,1): lb = sqrt(32); farthest (0,0): ub = sqrt(50).
        assert!((db.lb - 32.0f64.sqrt()).abs() < 1e-6);
        assert!((db.ub - 50.0f64.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn error_norm_is_diagonal_length() {
        let b = two_buckets();
        assert!((b.error_norm_sq(1) - (4.0 + 9.0)).abs() < 1e-6);
    }

    #[test]
    fn avg_side_width_reflects_curse_of_dimensionality() {
        // A single bucket spanning [0,1]^d has w_br = 1 regardless of d — the
        // Appendix B pathology.
        let d = 16;
        let rects = vec![(vec![0.0; d], vec![1.0; d])];
        let b = MultiDimBuckets::from_rects(&rects);
        assert_eq!(b.avg_side_width(), 1.0);
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn rejects_inverted_rects() {
        let _ = MultiDimBuckets::from_rects(&[(vec![1.0], vec![0.0])]);
    }
}
