//! Heuristic histograms from the selectivity-estimation literature
//! (paper §3.3.1): equi-width (HC-W) and equi-depth (HC-D).

use super::Histogram;
use crate::quantize::Level;

/// Equi-width histogram: `b` buckets of (near-)equal level width.
///
/// When `b` does not divide `n_dom` the remainder is spread across the first
/// buckets, so widths differ by at most one level. When `b >= n_dom`, every
/// level becomes its own bucket.
pub fn equi_width(n_dom: u32, b: u32) -> Histogram {
    assert!(b >= 1, "need at least one bucket");
    let b = b.min(n_dom);
    let base = n_dom / b;
    let extra = n_dom % b;
    let mut starts = Vec::with_capacity(b as usize);
    let mut pos: Level = 0;
    for i in 0..b {
        starts.push(pos);
        pos += base + u32::from(i < extra);
    }
    debug_assert_eq!(pos, n_dom);
    Histogram::from_starts(starts, n_dom)
}

/// Equi-depth histogram: `b` buckets with approximately equal total frequency
/// (`Σ F[x]` per bucket). This is also the encoding scheme of the VA-file
/// (paper §5.1, footnote on \[32\]).
///
/// A greedy sweep closes the current bucket once its accumulated frequency
/// reaches the remaining-average target; trailing all-zero regions merge into
/// the final bucket. The result always has *at most* `b` buckets and exactly
/// covers the domain.
pub fn equi_depth(freq: &[u64], b: u32) -> Histogram {
    assert!(b >= 1, "need at least one bucket");
    let n_dom = freq.len() as u32;
    assert!(n_dom >= 1, "empty frequency array");
    let b = b.min(n_dom);
    let total: u64 = freq.iter().sum();
    if total == 0 {
        // Degenerate workload: fall back to equi-width so the domain is still
        // covered with b buckets.
        return equi_width(n_dom, b);
    }

    let mut starts: Vec<Level> = vec![0];
    let mut acc: u64 = 0;
    let mut consumed: u64 = 0;
    for (x, &f) in freq.iter().enumerate() {
        let remaining_buckets = (b as usize - starts.len() + 1) as u64;
        // Target depth recomputed from what's left so late buckets absorb
        // rounding drift instead of overflowing past `b` buckets.
        let target = (total - consumed).div_ceil(remaining_buckets);
        acc += f;
        if acc >= target && (starts.len() as u32) < b && x + 1 < n_dom as usize {
            starts.push((x + 1) as Level);
            consumed += acc;
            acc = 0;
        }
    }
    Histogram::from_starts(starts, n_dom)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equi_width_divides_domain_evenly() {
        let h = equi_width(32, 4);
        let buckets: Vec<_> = h.buckets().collect();
        assert_eq!(buckets, vec![(0, 7), (8, 15), (16, 23), (24, 31)]);
    }

    #[test]
    fn equi_width_spreads_remainder() {
        let h = equi_width(10, 3);
        let widths: Vec<u32> = (0..3).map(|i| h.bucket_width(i) + 1).collect();
        assert_eq!(widths.iter().sum::<u32>(), 10);
        assert!(widths.iter().all(|&w| w == 3 || w == 4));
    }

    #[test]
    fn equi_width_saturates_at_singletons() {
        let h = equi_width(8, 100);
        assert_eq!(h.num_buckets(), 8);
        assert!(h.buckets().all(|(l, u)| l == u));
    }

    #[test]
    fn equi_depth_balances_frequencies() {
        // Paper Fig. 6 dataset: values {3,4,10,12,22,24,30,31}, each freq 1.
        let mut freq = vec![0u64; 32];
        for v in [3usize, 4, 10, 12, 22, 24, 30, 31] {
            freq[v] = 1;
        }
        let h = equi_depth(&freq, 4);
        assert_eq!(h.num_buckets(), 4);
        // Each bucket holds exactly two of the eight values.
        for (l, u) in h.buckets() {
            let depth: u64 = freq[l as usize..=u as usize].iter().sum();
            assert_eq!(depth, 2, "bucket [{l},{u}]");
        }
    }

    #[test]
    fn equi_depth_handles_skew() {
        let mut freq = vec![1u64; 16];
        freq[0] = 1000; // one heavy level
        let h = equi_depth(&freq, 4);
        assert_eq!(h.num_buckets(), 4);
        // The heavy level sits alone in the first bucket.
        assert_eq!(h.bucket_levels(0), (0, 0));
    }

    #[test]
    fn equi_depth_zero_frequency_falls_back_to_equi_width() {
        let h = equi_depth(&[0u64; 12], 3);
        assert_eq!(h.num_buckets(), 3);
        let widths: Vec<u32> = (0..3).map(|i| h.bucket_width(i)).collect();
        assert_eq!(widths, vec![3, 3, 3]);
    }

    #[test]
    fn equi_depth_never_exceeds_bucket_budget() {
        let freq: Vec<u64> = (0..100).map(|i| (i * 7919) % 13).collect();
        for b in 1..=20 {
            let h = equi_depth(&freq, b);
            assert!(h.num_buckets() as u32 <= b, "b={b} got {}", h.num_buckets());
            // Domain fully covered by construction (from_starts sentinel).
            assert_eq!(h.bucket_levels(h.num_buckets() as u32 - 1).1, 99);
        }
    }
}
