//! Histograms over the discrete value domain (paper Definition 6).
//!
//! A [`Histogram`] is an ordered partition of the level domain `[0 .. N_dom)`
//! into `B` contiguous buckets. In this problem — unlike selectivity
//! estimation — only the bucket *intervals* matter, not their frequencies
//! (paper §3.1): the bucket index of a value is its τ-bit code, and the bucket
//! interval supplies the lower/upper distance bounds.
//!
//! Submodules provide the construction algorithms compared in the paper:
//! * [`classic`] — equi-width (HC-W) and equi-depth (HC-D) heuristics,
//! * [`v_optimal`] — the V-optimal histogram under the SSE metric (HC-V),
//! * [`knn_optimal`] — the paper's optimal kNN histogram via the Algorithm 2
//!   dynamic program with Lemma 3 pruning (HC-O),
//! * [`individual`] — per-dimension histograms (iHC-*, §3.6.2),
//! * [`multidim`] — multi-dimensional bucket sets (mHC-R, §3.6.2).

pub mod classic;
pub mod dp;
pub mod individual;
pub mod knn_optimal;
pub mod multidim;
pub mod v_optimal;

use crate::quantize::{Level, Quantizer};

/// The histogram construction methods compared throughout the paper's
/// evaluation (HC-W, HC-D, HC-V, HC-O and their iHC-* variants).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HistogramKind {
    /// Equi-width (HC-W). Ignores the frequency array except for its length.
    EquiWidth,
    /// Equi-depth (HC-D) over the supplied frequencies. With data frequencies
    /// `F` this is also the VA-file's encoding scheme (paper §5.1).
    EquiDepth,
    /// V-optimal (HC-V) under the SSE metric over data frequencies `F`.
    VOptimal,
    /// The paper's optimal kNN histogram (HC-O, Algorithm 2) over the
    /// workload-derived frequencies `F'`.
    KnnOptimal,
}

impl HistogramKind {
    /// Build a histogram of at most `b` buckets from a frequency array.
    ///
    /// Which array to pass depends on the kind: data frequencies `F[x]` for
    /// `EquiWidth`/`EquiDepth`/`VOptimal`, workload frequencies `F'[x]` for
    /// `KnnOptimal` (paper §3.4.2).
    pub fn build(&self, freq: &[u64], b: u32) -> Histogram {
        match self {
            HistogramKind::EquiWidth => classic::equi_width(freq.len() as u32, b),
            HistogramKind::EquiDepth => classic::equi_depth(freq, b),
            HistogramKind::VOptimal => v_optimal::v_optimal(freq, b),
            HistogramKind::KnnOptimal => knn_optimal::knn_optimal(freq, b),
        }
    }

    /// Whether this kind consumes the workload frequency array `F'` rather
    /// than the data frequency array `F`.
    pub fn uses_workload_frequencies(&self) -> bool {
        matches!(self, HistogramKind::KnnOptimal)
    }

    /// Paper method name with the `HC-` prefix.
    pub fn label(&self) -> &'static str {
        match self {
            HistogramKind::EquiWidth => "HC-W",
            HistogramKind::EquiDepth => "HC-D",
            HistogramKind::VOptimal => "HC-V",
            HistogramKind::KnnOptimal => "HC-O",
        }
    }
}

impl std::fmt::Display for HistogramKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// An ordered partition of `[0 .. N_dom)` into contiguous buckets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// `starts[i]` is the first level of bucket `i`; `starts[B] == n_dom` is a
    /// sentinel. Strictly increasing, `starts[0] == 0`.
    starts: Vec<Level>,
    n_dom: u32,
}

impl Histogram {
    /// Build from bucket start positions (without the sentinel).
    ///
    /// # Panics
    /// Panics unless `starts` is non-empty, begins at 0, is strictly
    /// increasing, and stays below `n_dom`.
    pub fn from_starts(mut starts: Vec<Level>, n_dom: u32) -> Self {
        assert!(!starts.is_empty(), "histogram needs at least one bucket");
        assert_eq!(starts[0], 0, "first bucket must start at level 0");
        for w in starts.windows(2) {
            assert!(w[0] < w[1], "bucket starts must be strictly increasing");
        }
        assert!(
            *starts.last().expect("non-empty") < n_dom,
            "bucket start beyond domain"
        );
        starts.push(n_dom);
        Self { starts, n_dom }
    }

    /// The single-bucket histogram covering the whole domain.
    pub fn trivial(n_dom: u32) -> Self {
        Self::from_starts(vec![0], n_dom)
    }

    /// Number of buckets `B`.
    #[inline]
    pub fn num_buckets(&self) -> usize {
        self.starts.len() - 1
    }

    /// Code length `τ = ceil(log2 B)` in bits (paper §3.1). A one-bucket
    /// histogram still needs one bit per stored code.
    #[inline]
    pub fn tau(&self) -> u32 {
        let b = self.num_buckets() as u32;
        if b <= 1 {
            1
        } else {
            32 - (b - 1).leading_zeros()
        }
    }

    /// Domain size `N_dom`.
    #[inline]
    pub fn n_dom(&self) -> u32 {
        self.n_dom
    }

    /// Bucket index containing the given level (Definition 7, `H(v)`).
    #[inline]
    pub fn bucket_of_level(&self, level: Level) -> u32 {
        debug_assert!(level < self.n_dom);
        // partition_point returns the first start > level; that bucket's
        // predecessor contains the level.
        let idx = self.starts.partition_point(|&s| s <= level);
        (idx - 1) as u32
    }

    /// The level interval `[l_i ..= u_i]` of bucket `i`.
    #[inline]
    pub fn bucket_levels(&self, bucket: u32) -> (Level, Level) {
        let i = bucket as usize;
        (self.starts[i], self.starts[i + 1] - 1)
    }

    /// Bucket width `u_i − l_i` in levels — the quantity the M3 metric
    /// penalizes quadratically.
    #[inline]
    pub fn bucket_width(&self, bucket: u32) -> u32 {
        let (l, u) = self.bucket_levels(bucket);
        u - l
    }

    /// Iterate over `(l_i, u_i)` level intervals.
    pub fn buckets(&self) -> impl Iterator<Item = (Level, Level)> + '_ {
        self.starts.windows(2).map(|w| (w[0], w[1] - 1))
    }

    /// Dense level → bucket lookup table for O(1) encoding.
    pub fn level_index(&self) -> Vec<u32> {
        let mut table = vec![0u32; self.n_dom as usize];
        for (b, (l, u)) in self.buckets().enumerate() {
            for entry in &mut table[l as usize..=u as usize] {
                *entry = b as u32;
            }
        }
        table
    }

    /// Real-valued closed bucket intervals under a quantizer, used for sound
    /// distance bounds against exact `f32` data.
    pub fn real_buckets(&self, quantizer: &Quantizer) -> Vec<(f32, f32)> {
        assert_eq!(
            quantizer.n_dom(),
            self.n_dom,
            "quantizer domain must match histogram domain"
        );
        self.buckets()
            .map(|(l, u)| quantizer.levels_to_real(l, u))
            .collect()
    }

    /// In-memory footprint of the bucket boundary table in bytes (reported in
    /// the paper's Table 3 "Space" row).
    pub fn space_bytes(&self) -> usize {
        self.starts.len() * std::mem::size_of::<Level>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig5_histogram() -> Histogram {
        // Paper Figure 5b: τ=2, buckets [0..7], [8..15], [16..23], [24..31].
        Histogram::from_starts(vec![0, 8, 16, 24], 32)
    }

    #[test]
    fn fig5_bucket_lookup() {
        let h = fig5_histogram();
        assert_eq!(h.num_buckets(), 4);
        assert_eq!(h.tau(), 2);
        assert_eq!(h.bucket_of_level(2), 0); // p1.x = 2 → code 00
        assert_eq!(h.bucket_of_level(20), 2); // p1.y = 20 → code 10
        assert_eq!(h.bucket_of_level(26), 3);
        assert_eq!(h.bucket_levels(1), (8, 15));
    }

    #[test]
    fn tau_is_ceil_log2() {
        let mk = |b: u32| Histogram::from_starts((0..b).collect(), 1024).tau();
        assert_eq!(mk(1), 1);
        assert_eq!(mk(2), 1);
        assert_eq!(mk(3), 2);
        assert_eq!(mk(4), 2);
        assert_eq!(mk(5), 3);
        assert_eq!(mk(1024), 10);
    }

    #[test]
    fn level_index_agrees_with_binary_search() {
        let h = Histogram::from_starts(vec![0, 3, 10, 11, 20], 32);
        let idx = h.level_index();
        for level in 0..32u32 {
            assert_eq!(
                idx[level as usize],
                h.bucket_of_level(level),
                "level {level}"
            );
        }
    }

    #[test]
    fn buckets_tile_the_domain() {
        let h = Histogram::from_starts(vec![0, 5, 9], 16);
        let buckets: Vec<_> = h.buckets().collect();
        assert_eq!(buckets, vec![(0, 4), (5, 8), (9, 15)]);
        assert_eq!(h.bucket_width(0), 4);
        assert_eq!(h.bucket_width(2), 6);
    }

    #[test]
    fn real_buckets_cover_quantized_values() {
        let q = Quantizer::new(0.0, 32.0, 32);
        let h = fig5_histogram();
        let real = h.real_buckets(&q);
        // Value 20.0 quantizes into bucket 2 whose real interval must contain it.
        let b = h.bucket_of_level(q.level(20.0)) as usize;
        assert_eq!(b, 2);
        assert!(real[b].0 <= 20.0 && 20.0 <= real[b].1);
    }

    #[test]
    fn trivial_histogram_has_one_bucket() {
        let h = Histogram::trivial(64);
        assert_eq!(h.num_buckets(), 1);
        assert_eq!(h.bucket_levels(0), (0, 63));
        assert_eq!(h.bucket_of_level(63), 0);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_unsorted_starts() {
        let _ = Histogram::from_starts(vec![0, 8, 8], 32);
    }
}
