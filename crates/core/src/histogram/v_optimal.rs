//! V-optimal histogram (HC-V): minimizes the sum-squared-error metric
//! `M_SSE(H) = Σ_i Σ_{x ∈ [l_i,u_i]} (F[x] − AVG([l_i,u_i]))²` of the classic
//! selectivity-estimation literature (paper §3.3.1, citing Jagadish et al.
//! VLDB '98).
//!
//! The paper uses HC-V as a baseline to show that the traditional histogram
//! objective does *not* minimize kNN refinement I/O: a wide bucket of
//! near-equal frequencies is free under SSE but produces loose distance
//! bounds.

use super::dp::{optimal_partition, IntervalCost};
use super::Histogram;
use crate::quantize::Level;

/// O(1) SSE interval cost backed by prefix sums of `F` and `F²`.
///
/// `SSE([l,u]) = Σ F[x]² − (Σ F[x])² / (u−l+1)`, which is the textbook
/// expansion of the variance numerator. SSE is monotone non-decreasing in
/// interval expansion, so Lemma 3 pruning remains exact.
pub struct SseCost {
    sum: Vec<f64>,    // sum[i] = Σ_{x<i} F[x]
    sum_sq: Vec<f64>, // sum_sq[i] = Σ_{x<i} F[x]²
}

impl SseCost {
    pub fn new(freq: &[u64]) -> Self {
        let mut sum = Vec::with_capacity(freq.len() + 1);
        let mut sum_sq = Vec::with_capacity(freq.len() + 1);
        sum.push(0.0);
        sum_sq.push(0.0);
        let (mut s, mut s2) = (0.0f64, 0.0f64);
        for &f in freq {
            let f = f as f64;
            s += f;
            s2 += f * f;
            sum.push(s);
            sum_sq.push(s2);
        }
        Self { sum, sum_sq }
    }
}

impl IntervalCost for SseCost {
    #[inline]
    fn cost(&self, l: Level, u: Level) -> f64 {
        let (l, u) = (l as usize, u as usize);
        let cnt = (u - l + 1) as f64;
        let s = self.sum[u + 1] - self.sum[l];
        let s2 = self.sum_sq[u + 1] - self.sum_sq[l];
        // Guard tiny negative values from floating-point cancellation.
        (s2 - s * s / cnt).max(0.0)
    }
}

/// Build the V-optimal histogram with at most `b` buckets over the level
/// frequency array `F` (from [`crate::quantize::Quantizer::frequency_array`]).
pub fn v_optimal(freq: &[u64], b: u32) -> Histogram {
    let cost = SseCost::new(freq);
    optimal_partition(freq.len() as u32, b, &cost, true)
}

/// The SSE metric value `M_SSE(H)` of a histogram against a frequency array.
pub fn sse_metric(h: &Histogram, freq: &[u64]) -> f64 {
    let cost = SseCost::new(freq);
    super::dp::partition_cost(h, &cost)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sse_cost_matches_direct_computation() {
        let freq = [4u64, 4, 1, 9, 2, 2];
        let cost = SseCost::new(&freq);
        for l in 0..freq.len() {
            for u in l..freq.len() {
                let vals: Vec<f64> = freq[l..=u].iter().map(|&f| f as f64).collect();
                let avg = vals.iter().sum::<f64>() / vals.len() as f64;
                let direct: f64 = vals.iter().map(|v| (v - avg) * (v - avg)).sum();
                let fast = cost.cost(l as u32, u as u32);
                assert!((direct - fast).abs() < 1e-9, "[{l},{u}]");
            }
        }
    }

    #[test]
    fn constant_frequency_region_is_free() {
        let cost = SseCost::new(&[7, 7, 7, 7]);
        assert_eq!(cost.cost(0, 3), 0.0);
    }

    #[test]
    fn sse_is_monotone_in_left_expansion() {
        let freq = [1u64, 8, 3, 3, 9, 0, 2];
        let cost = SseCost::new(&freq);
        for u in 0..freq.len() as u32 {
            for l2 in 0..=u {
                for l1 in 0..=l2 {
                    assert!(
                        cost.cost(l1, u) >= cost.cost(l2, u) - 1e-9,
                        "[{l1},{u}] vs [{l2},{u}]"
                    );
                }
            }
        }
    }

    #[test]
    fn v_optimal_separates_frequency_plateaus() {
        // Two plateaus: F = [5,5,5,5, 1,1,1,1]; with 2 buckets the optimum
        // splits exactly between them and has zero SSE.
        let freq = [5u64, 5, 5, 5, 1, 1, 1, 1];
        let h = v_optimal(&freq, 2);
        assert_eq!(h.num_buckets(), 2);
        assert_eq!(h.bucket_levels(0), (0, 3));
        assert_eq!(sse_metric(&h, &freq), 0.0);
    }

    #[test]
    fn more_buckets_never_increase_sse() {
        let freq: Vec<u64> = (0..24).map(|i| ((i * 13) % 7) as u64).collect();
        let mut last = f64::INFINITY;
        for b in 1..=10 {
            let m = sse_metric(&v_optimal(&freq, b), &freq);
            assert!(m <= last + 1e-9, "b={b}: {m} > {last}");
            last = m;
        }
    }

    #[test]
    fn paper_fig6_equi_depth_equals_v_optimal() {
        // Fig. 6 notes equi-depth and V-optimal coincide on the example data:
        // all nonzero frequencies are 1, grouped in 4 pairs.
        let mut freq = vec![0u64; 32];
        for v in [3usize, 4, 10, 12, 22, 24, 30, 31] {
            freq[v] = 1;
        }
        let h = v_optimal(&freq, 4);
        // Zero SSE is attainable (each bucket mixes only 0s and a pair of 1s —
        // not zero SSE in general), so just check optimality vs equi-width.
        let ew = super::super::classic::equi_width(32, 4);
        assert!(sse_metric(&h, &freq) <= sse_metric(&ew, &freq) + 1e-9);
    }
}
