//! Generic optimal-partition dynamic program shared by the V-optimal (HC-V)
//! and kNN-optimal (HC-O, Algorithm 2) histogram builders.
//!
//! Both problems are instances of: partition the level domain `[0 .. N_dom)`
//! into at most `B` contiguous buckets minimizing the sum of a per-bucket
//! interval cost, where the cost is *monotone*: widening a bucket on the left
//! never decreases its cost (paper Lemma 3 for the Υ cost; the classic
//! variance argument for SSE). Monotonicity enables the early-termination rule
//! of Algorithm 2 lines 14–15: scanning split positions right-to-left, once
//! the last bucket alone costs at least the best solution found, no further
//! split can win.

use super::Histogram;
use crate::quantize::Level;

/// Cost of a single bucket covering the inclusive level interval `[l ..= u]`.
///
/// Implementations must be monotone in interval expansion
/// (`cost(l₁, u) >= cost(l₂, u)` whenever `l₁ <= l₂`) for pruned runs to stay
/// exact, and should be O(1) (typically via prefix sums) — the DP calls it up
/// to `O(N_dom² · B)` times.
pub trait IntervalCost {
    fn cost(&self, l: Level, u: Level) -> f64;
}

impl<F: Fn(Level, Level) -> f64> IntervalCost for F {
    fn cost(&self, l: Level, u: Level) -> f64 {
        self(l, u)
    }
}

/// Exact minimizer of `Σ_buckets cost(l_i, u_i)` over partitions of
/// `[0 .. n_dom)` into at most `b` buckets.
///
/// `prune` toggles the Lemma 3 early-termination rule; the result is
/// identical either way (verified by tests), pruning only affects running
/// time. This switch exists so the ablation bench can quantify the speedup.
pub fn optimal_partition(n_dom: u32, b: u32, cost: &impl IntervalCost, prune: bool) -> Histogram {
    assert!(n_dom >= 1, "empty domain");
    assert!(b >= 1, "need at least one bucket");
    if b >= n_dom {
        // Every level its own bucket: each bucket has zero width, which is
        // optimal for any monotone cost with cost(l, l) minimal.
        return Histogram::from_starts((0..n_dom).collect(), n_dom);
    }
    let n = n_dom as usize;
    let b = b as usize;

    // prev[x] = OPT(x, m-1): min cost covering levels [0 .. x) with at most
    // m-1 buckets. Rolling rows keep memory at O(N_dom); `split[m][x]` stores
    // the chosen split for reconstruction (u32::MAX = "reuse the m-1 row").
    let mut prev: Vec<f64> = vec![0.0; n + 1];
    for (x, slot) in prev.iter_mut().enumerate().skip(1) {
        *slot = cost.cost(0, (x - 1) as Level);
    }
    let mut split: Vec<u32> = vec![u32::MAX; (b + 1) * (n + 1)];

    let mut cur: Vec<f64> = vec![0.0; n + 1];
    for m in 2..=b {
        let row = m * (n + 1);
        for x in 1..=n {
            // Using fewer than m buckets is always allowed ("at most m").
            let mut best = prev[x];
            let mut best_t = u32::MAX;
            // Last bucket covers [t .. x-1]; scan t right-to-left so the
            // last-bucket cost grows monotonically and pruning is sound.
            for t in (1..x).rev() {
                let tail = cost.cost(t as Level, (x - 1) as Level);
                if prune && tail >= best {
                    break; // Lemma 3: tail only grows as t decreases.
                }
                let total = prev[t] + tail;
                if total < best {
                    best = total;
                    best_t = t as u32;
                }
            }
            cur[x] = best;
            split[row + x] = best_t;
        }
        std::mem::swap(&mut prev, &mut cur);
    }

    // Reconstruct split positions from (b, n) back to the left edge.
    let mut starts: Vec<Level> = Vec::new();
    let mut x = n;
    let mut m = b;
    while x > 0 {
        let t = if m >= 2 {
            split[m * (n + 1) + x]
        } else {
            u32::MAX
        };
        if t == u32::MAX {
            if m >= 2 {
                // This prefix is optimal with fewer buckets; drop a level.
                m -= 1;
                continue;
            }
            // m == 1: single bucket covers [0 .. x).
            starts.push(0);
            break;
        }
        starts.push(t);
        x = t as usize;
        m -= 1;
    }
    if starts.last() != Some(&0) {
        starts.push(0);
    }
    starts.reverse();
    starts.dedup();
    Histogram::from_starts(starts, n_dom)
}

/// Total partition cost of a histogram under a cost function (for tests and
/// the metric-evaluation API).
pub fn partition_cost(h: &Histogram, cost: &impl IntervalCost) -> f64 {
    h.buckets().map(|(l, u)| cost.cost(l, u)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exhaustive minimum over all partitions of [0..n) into at most b
    /// non-empty contiguous buckets.
    fn brute_force(n: u32, b: u32, cost: &impl IntervalCost) -> f64 {
        fn rec(start: u32, n: u32, b: u32, cost: &impl IntervalCost) -> f64 {
            if start == n {
                return 0.0;
            }
            if b == 1 {
                return cost.cost(start, n - 1);
            }
            let mut best = f64::INFINITY;
            for end in start..n {
                let c = cost.cost(start, end) + rec(end + 1, n, b - 1, cost);
                if c < best {
                    best = c;
                }
            }
            best
        }
        rec(0, n, b, cost)
    }

    /// Υ-style cost from a weight array: W([l,u]) · (u−l)².
    fn upsilon_cost(weights: Vec<f64>) -> impl IntervalCost {
        move |l: Level, u: Level| {
            let w: f64 = weights[l as usize..=u as usize].iter().sum();
            let width = (u - l) as f64;
            w * width * width
        }
    }

    #[test]
    fn matches_brute_force_on_small_domains() {
        let weights = vec![3.0, 0.0, 0.0, 5.0, 1.0, 0.0, 2.0, 2.0, 0.0, 4.0];
        let cost = upsilon_cost(weights);
        for b in 1..=6u32 {
            let h = optimal_partition(10, b, &cost, true);
            let got = partition_cost(&h, &cost);
            let want = brute_force(10, b, &cost);
            assert!(
                (got - want).abs() < 1e-9,
                "b={b}: dp={got} brute={want} ({h:?})"
            );
            assert!(h.num_buckets() as u32 <= b);
        }
    }

    #[test]
    fn pruning_does_not_change_the_result_cost() {
        let weights: Vec<f64> = (0..40).map(|i| ((i * 37) % 11) as f64).collect();
        let cost = upsilon_cost(weights);
        for b in [2u32, 4, 8, 16] {
            let pruned = optimal_partition(40, b, &cost, true);
            let full = optimal_partition(40, b, &cost, false);
            let a = partition_cost(&pruned, &cost);
            let bb = partition_cost(&full, &cost);
            assert!((a - bb).abs() < 1e-9, "b={b}: {a} vs {bb}");
        }
    }

    #[test]
    fn concentrated_weight_gets_tight_buckets() {
        // All weight on levels 4 and 5. With 3 buckets the best the optimum
        // can do is a width-1 bucket [4..5] (cost 20·1² = 20); with 4 buckets
        // both hot levels become free singletons.
        let mut weights = vec![0.0; 12];
        weights[4] = 10.0;
        weights[5] = 10.0;
        let cost = upsilon_cost(weights);
        let h3 = optimal_partition(12, 3, &cost, true);
        assert_eq!(partition_cost(&h3, &cost), 20.0);
        let h4 = optimal_partition(12, 4, &cost, true);
        assert_eq!(partition_cost(&h4, &cost), 0.0);
    }

    #[test]
    fn b_geq_domain_yields_singletons() {
        let cost = upsilon_cost(vec![1.0; 6]);
        let h = optimal_partition(6, 99, &cost, true);
        assert_eq!(h.num_buckets(), 6);
        assert!(h.buckets().all(|(l, u)| l == u));
    }

    #[test]
    fn single_bucket_when_b_is_one() {
        let cost = upsilon_cost(vec![1.0; 9]);
        let h = optimal_partition(9, 1, &cost, true);
        assert_eq!(h.num_buckets(), 1);
        assert_eq!(h.bucket_levels(0), (0, 8));
    }

    #[test]
    fn zero_weight_domain_is_free() {
        let cost = upsilon_cost(vec![0.0; 20]);
        let h = optimal_partition(20, 4, &cost, true);
        assert_eq!(partition_cost(&h, &cost), 0.0);
    }
}
