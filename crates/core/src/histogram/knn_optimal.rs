//! The paper's optimal kNN histogram (HC-O): Algorithm 2.
//!
//! Minimizes the M3 metric
//! `M2_kNN(H) = Σ_i Σ_{x ∈ [l_i,u_i]} F'[x] · (u_i − l_i)²` (paper Eqn. M3),
//! where `F'[x]` counts how often level `x` appears among the coordinates of
//! the per-query k-th-upper-bound contributors `QR` collected from the query
//! workload (Eqns. 2–3). The inner sum per bucket is
//! `Υ([l,u]) = W([l,u]) · (u−l)²` with `W` a prefix-summed weight — O(1) per
//! evaluation — and the dynamic program of [`super::dp`] solves the partition
//! exactly, using the Lemma 3 monotonicity of Υ for early termination.

use super::dp::{optimal_partition, partition_cost, IntervalCost};
use super::Histogram;
use crate::quantize::Level;

/// O(1) evaluation of `Υ([l,u]) = (Σ_{x∈[l,u]} F'[x]) · (u−l)²` via prefix
/// sums (paper Eqn. 4).
pub struct UpsilonCost {
    prefix: Vec<f64>,
}

impl UpsilonCost {
    pub fn new(f_prime: &[u64]) -> Self {
        let mut prefix = Vec::with_capacity(f_prime.len() + 1);
        prefix.push(0.0);
        let mut acc = 0.0f64;
        for &f in f_prime {
            acc += f as f64;
            prefix.push(acc);
        }
        Self { prefix }
    }

    /// Total workload weight `Σ_x F'[x]`.
    pub fn total_weight(&self) -> f64 {
        *self.prefix.last().expect("non-empty prefix")
    }
}

impl IntervalCost for UpsilonCost {
    #[inline]
    fn cost(&self, l: Level, u: Level) -> f64 {
        let w = self.prefix[u as usize + 1] - self.prefix[l as usize];
        let width = (u - l) as f64;
        w * width * width
    }
}

/// Build the kNN-optimal histogram (Algorithm 2) with at most `b = 2^τ`
/// buckets from the workload-derived frequency array `F'`.
///
/// `F'` is produced offline by replaying the query workload and counting the
/// coordinates of each query's k nearest cached candidates — see
/// `hc-query::builder::collect_f_prime`.
pub fn knn_optimal(f_prime: &[u64], b: u32) -> Histogram {
    knn_optimal_with_pruning(f_prime, b, true)
}

/// As [`knn_optimal`], with the Lemma 3 early-termination rule toggleable for
/// the ablation benchmark. Results are identical; only build time differs.
pub fn knn_optimal_with_pruning(f_prime: &[u64], b: u32, prune: bool) -> Histogram {
    let cost = UpsilonCost::new(f_prime);
    optimal_partition(f_prime.len() as u32, b, &cost, prune)
}

/// The M3 metric value `M2^WL_kNN(H)` of an arbitrary histogram against `F'`
/// (used to compare HC-W / HC-D / HC-V / HC-O under the paper's objective).
pub fn m3_metric(h: &Histogram, f_prime: &[u64]) -> f64 {
    let cost = UpsilonCost::new(f_prime);
    partition_cost(h, &cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::classic::{equi_depth, equi_width};

    #[test]
    fn upsilon_matches_definition() {
        let f = [0u64, 3, 0, 0, 2, 1];
        let cost = UpsilonCost::new(&f);
        // Υ([1,4]) = (3+0+0+2) · 3² = 45
        assert_eq!(cost.cost(1, 4), 45.0);
        // Singleton buckets are free regardless of weight.
        assert_eq!(cost.cost(1, 1), 0.0);
        assert_eq!(cost.total_weight(), 6.0);
    }

    #[test]
    fn lemma3_monotonicity_holds() {
        let f = [4u64, 0, 7, 1, 0, 0, 9, 2];
        let cost = UpsilonCost::new(&f);
        for u in 0..f.len() as u32 {
            for l2 in 0..=u {
                for l1 in 0..=l2 {
                    assert!(cost.cost(l1, u) >= cost.cost(l2, u));
                }
            }
        }
    }

    #[test]
    fn optimum_beats_classic_histograms_on_m3() {
        // Weight concentrated near the workload's hot region (levels 10..14),
        // data spread across the domain — the setting of paper Fig. 6.
        let mut f_prime = vec![0u64; 64];
        for slot in f_prime.iter_mut().take(14).skip(10) {
            *slot = 25;
        }
        f_prime[40] = 1;
        f_prime[60] = 1;
        let b = 8;
        let opt = knn_optimal(&f_prime, b);
        let m_opt = m3_metric(&opt, &f_prime);
        let m_w = m3_metric(&equi_width(64, b), &f_prime);
        let m_d = m3_metric(&equi_depth(&f_prime, b), &f_prime);
        assert!(m_opt <= m_w && m_opt <= m_d, "opt={m_opt} w={m_w} d={m_d}");
    }

    #[test]
    fn hot_levels_become_singletons_when_budget_allows() {
        let mut f_prime = vec![0u64; 32];
        f_prime[5] = 100;
        f_prime[20] = 100;
        // 5 buckets: enough to isolate both hot levels with zero M3.
        let h = knn_optimal(&f_prime, 5);
        assert_eq!(m3_metric(&h, &f_prime), 0.0);
        let hot_bucket_5 = h.bucket_of_level(5);
        let hot_bucket_20 = h.bucket_of_level(20);
        // Each hot level lives in a bucket of zero width or zero weight overlap.
        assert!(h.bucket_width(hot_bucket_5) == 0 || h.bucket_width(hot_bucket_20) == 0);
    }

    #[test]
    fn pruning_toggle_is_cost_equivalent() {
        let f: Vec<u64> = (0..50).map(|i| ((i * 31) % 9) as u64).collect();
        for b in [2u32, 4, 8] {
            let a = m3_metric(&knn_optimal_with_pruning(&f, b, true), &f);
            let c = m3_metric(&knn_optimal_with_pruning(&f, b, false), &f);
            assert!((a - c).abs() < 1e-9, "b={b}");
        }
    }

    #[test]
    fn more_buckets_never_increase_m3() {
        let f: Vec<u64> = (0..40).map(|i| ((i * 17) % 5) as u64).collect();
        let mut last = f64::INFINITY;
        for b in 1..=12 {
            let m = m3_metric(&knn_optimal(&f, b), &f);
            assert!(m <= last + 1e-9, "b={b}");
            last = m;
        }
    }
}
