//! Individual-dimension histograms (iHC-*, paper §3.6.2).
//!
//! Instead of one global histogram shared by every dimension, this variant
//! builds a separate histogram `H_j` per dimension. The paper shows the M3
//! metric decomposes dimension-wise
//! (`Σ_i Σ_x F'[x]·w² = Σ_j Σ_i Σ_x F'_j[x]·w²`), so each `H_j` is obtained by
//! running the same construction on the per-dimension frequency array
//! `F'_j[x]`. The price is `d×` histogram space and construction time
//! (paper Table 3) for a marginal refinement-time gain.

use super::{Histogram, HistogramKind};

/// Build one histogram per dimension from per-dimension frequency arrays.
///
/// `freq_per_dim[j]` is `F_j` (data frequencies, for HC-W/HC-D/HC-V kinds) or
/// `F'_j` (workload frequencies, for the kNN-optimal kind) over the shared
/// level domain. All histograms receive the same bucket budget `b`, matching
/// the paper's uniform code length τ across dimensions.
pub fn build_per_dim(kind: HistogramKind, freq_per_dim: &[Vec<u64>], b: u32) -> Vec<Histogram> {
    assert!(!freq_per_dim.is_empty(), "need at least one dimension");
    let n_dom = freq_per_dim[0].len();
    assert!(
        freq_per_dim.iter().all(|f| f.len() == n_dom),
        "all dimensions must share one level domain"
    );
    freq_per_dim.iter().map(|f| kind.build(f, b)).collect()
}

/// Decompose a flat per-coordinate frequency stream into per-dimension
/// arrays: `F'_j[x] = COUNT{ b.j = x }` (paper §3.6.2). The input iterator
/// yields `(dim, level)` pairs.
pub fn decompose_frequencies(
    coords: impl Iterator<Item = (usize, u32)>,
    d: usize,
    n_dom: u32,
) -> Vec<Vec<u64>> {
    let mut per_dim = vec![vec![0u64; n_dom as usize]; d];
    for (j, x) in coords {
        per_dim[j][x as usize] += 1;
    }
    per_dim
}

/// Sum per-dimension arrays back into the global `F'[x]` (the identity the
/// paper's decomposition relies on: `F'[x] = Σ_j F'_j[x]`).
pub fn merge_frequencies(per_dim: &[Vec<u64>]) -> Vec<u64> {
    assert!(!per_dim.is_empty());
    let n = per_dim[0].len();
    let mut merged = vec![0u64; n];
    for f in per_dim {
        for (m, &v) in merged.iter_mut().zip(f.iter()) {
            *m += v;
        }
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::knn_optimal::m3_metric;

    #[test]
    fn decompose_counts_per_dimension() {
        let coords = [(0usize, 2u32), (0, 2), (1, 5), (1, 2), (0, 7)];
        let per_dim = decompose_frequencies(coords.into_iter(), 2, 8);
        assert_eq!(per_dim[0][2], 2);
        assert_eq!(per_dim[0][7], 1);
        assert_eq!(per_dim[1][5], 1);
        assert_eq!(per_dim[1][2], 1);
    }

    #[test]
    fn merge_is_sum_of_dimensions() {
        let coords = [(0usize, 1u32), (1, 1), (1, 3), (2, 0)];
        let per_dim = decompose_frequencies(coords.into_iter(), 3, 4);
        let merged = merge_frequencies(&per_dim);
        assert_eq!(merged, vec![1, 2, 0, 1]);
    }

    #[test]
    fn per_dim_histograms_are_independent() {
        // Dim 0 hot at level 1, dim 1 hot at level 14: each histogram should
        // carve a tight bucket around its own hot region.
        let mut f0 = vec![0u64; 16];
        f0[1] = 50;
        let mut f1 = vec![0u64; 16];
        f1[14] = 50;
        let hists = build_per_dim(HistogramKind::KnnOptimal, &[f0.clone(), f1.clone()], 4);
        assert_eq!(hists.len(), 2);
        assert_eq!(m3_metric(&hists[0], &f0), 0.0);
        assert_eq!(m3_metric(&hists[1], &f1), 0.0);
        assert_ne!(hists[0], hists[1]);
    }

    #[test]
    fn individual_sum_never_worse_than_global_on_decomposed_metric() {
        // The dimension-wise decomposition means Σ_j M3(H_j, F'_j) ≤
        // M3(H_global, Σ_j F'_j)-style comparisons hold per dimension: each
        // H_j is optimal for its own F'_j.
        let f0: Vec<u64> = (0..32).map(|i| ((i * 7) % 5) as u64).collect();
        let f1: Vec<u64> = (0..32).map(|i| ((i * 3) % 4) as u64).collect();
        let per = build_per_dim(HistogramKind::KnnOptimal, &[f0.clone(), f1.clone()], 4);
        let merged = merge_frequencies(&[f0.clone(), f1.clone()]);
        let global = HistogramKind::KnnOptimal.build(&merged, 4);
        let sum_individual = m3_metric(&per[0], &f0) + m3_metric(&per[1], &f1);
        let sum_global = m3_metric(&global, &f0) + m3_metric(&global, &f1);
        assert!(sum_individual <= sum_global + 1e-9);
    }

    #[test]
    #[should_panic(expected = "share one level domain")]
    fn rejects_mismatched_domains() {
        let _ = build_per_dim(HistogramKind::EquiWidth, &[vec![0; 8], vec![0; 4]], 2);
    }
}
