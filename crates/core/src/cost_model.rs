//! The paper's cost estimation model (§4): predict refinement I/O as a
//! function of the cache size `CS` and the code length τ, and auto-tune the
//! optimal τ.
//!
//! Model structure (Eqn. 1): `C_refine = (1 − ρ_hit · ρ_prune) · |C(q)|`.
//!
//! * `ρ_hit` — estimated from the workload's candidate access-frequency
//!   distribution under the HFF policy (§4.1.2 / Theorem 1): the compact cache
//!   holds `L_value/τ` times more items than the exact cache, so its hit
//!   ratio is at most that factor higher.
//! * `ρ_prune = 1 − ρ_refine`, where `ρ_refine` is bounded by the error-vector
//!   norm of the k-th upper-bound candidate over the maximum candidate
//!   distance (Theorem 2), with the closed form `√d · w / D_max` for
//!   equi-width buckets of real width `w` (Theorem 3).
//!
//! The tuning loop (§4.2) simply evaluates the model for each τ and keeps the
//! minimizer. All functions here are pure and O(τ_range) so tuning is
//! effectively free compared to histogram construction.

use crate::histogram::Histogram;
use crate::quantize::Quantizer;

/// Inputs shared by every cost estimate: the workload statistics gathered by
/// the offline builder.
#[derive(Debug, Clone)]
pub struct WorkloadStats {
    /// Candidate access frequencies, sorted descending (HFF order):
    /// `freq(p) = |{q ∈ WL : p ∈ C(q)}|` for every point that appeared in at
    /// least one candidate set. Points never requested may be omitted — they
    /// contribute zero mass.
    pub freq_desc: Vec<u64>,
    /// Average candidate-set size `E[|C(q)|]` over the workload.
    pub avg_candidates: f64,
    /// Largest candidate distance `D_max` observed (or the LSH
    /// `(R,c)`-guarantee value `c·R`, Theorem 3).
    pub d_max: f64,
    /// Dataset cardinality `|P|`.
    pub n_points: usize,
    /// Dimensionality `d`.
    pub dim: usize,
}

impl WorkloadStats {
    /// Total access mass `Σ_p freq(p)` (denominator of every hit ratio).
    pub fn total_mass(&self) -> u64 {
        self.freq_desc.iter().sum()
    }
}

/// Bits per raw dimension value (`L_value`); we store `f32`, matching the
/// paper's typical 32.
pub const L_VALUE_BITS: u32 = 32;

/// How many *exact* points fit in `cache_bytes`.
pub fn exact_cache_items(cache_bytes: usize, dim: usize) -> usize {
    let per = dim * (L_VALUE_BITS as usize / 8);
    cache_bytes.checked_div(per).unwrap_or(0)
}

/// How many *compact* points of code length τ fit in `cache_bytes`
/// (word-aligned packing, paper footnote 5).
pub fn compact_cache_items(cache_bytes: usize, dim: usize, tau: u32) -> usize {
    let per = crate::codes::words_per_point(dim, tau) * 8;
    cache_bytes.checked_div(per).unwrap_or(0)
}

/// HFF hit ratio when the cache holds the `n_items` most frequent candidates:
/// `ρ = Σ_{i<n_items} f_i / Σ_i f_i` (§4.1.2). Capped at 1 when the cache
/// holds every requested point.
pub fn hff_hit_ratio(stats: &WorkloadStats, n_items: usize) -> f64 {
    let total = stats.total_mass();
    if total == 0 {
        return 0.0;
    }
    let covered: u64 = stats.freq_desc.iter().take(n_items).sum();
    covered as f64 / total as f64
}

/// Theorem 1 upper bound: `ρ_hit ≤ (L_value / τ) · ρ*_hit`, saturating at 1
/// once the compact cache holds the entire dataset.
pub fn theorem1_hit_bound(rho_exact: f64, tau: u32, holds_all_points: bool) -> f64 {
    if holds_all_points {
        return 1.0;
    }
    ((L_VALUE_BITS as f64 / tau as f64) * rho_exact).min(1.0)
}

/// Theorem 3: `ρ_refine ≤ min(√d · w / D_max, 1)` for equi-width buckets of
/// *real-valued* width `w`.
pub fn rho_refine_equiwidth(dim: usize, bucket_width: f64, d_max: f64) -> f64 {
    if d_max <= 0.0 {
        return 1.0;
    }
    (((dim as f64).sqrt() * bucket_width) / d_max).min(1.0)
}

/// Theorem 2 instantiated for an arbitrary histogram: estimate the expected
/// error-vector norm `||ε(b_k)||` by averaging squared *real* bucket widths
/// under the workload weight `F'` and taking `√(d · E[w²])`, then
/// `ρ_refine ≤ min(||ε|| / D_max, 1)`.
pub fn rho_refine_histogram(
    hist: &Histogram,
    quantizer: &Quantizer,
    f_prime: &[u64],
    dim: usize,
    d_max: f64,
) -> f64 {
    assert_eq!(f_prime.len(), quantizer.n_dom() as usize);
    let mut mass = 0.0f64;
    let mut w2 = 0.0f64;
    for (l, u) in hist.buckets() {
        let weight: u64 = f_prime[l as usize..=u as usize].iter().sum();
        if weight == 0 {
            continue;
        }
        let (lo, hi) = quantizer.levels_to_real(l, u);
        let w = (hi - lo) as f64;
        mass += weight as f64;
        w2 += weight as f64 * w * w;
    }
    if mass == 0.0 || d_max <= 0.0 {
        return 1.0;
    }
    let eps = (dim as f64 * (w2 / mass)).sqrt();
    (eps / d_max).min(1.0)
}

/// Estimated refinement I/O per query (Eqn. 1):
/// `(1 − ρ_hit · ρ_prune) · E[|C(q)|]`.
pub fn estimate_refine_io(rho_hit: f64, rho_refine: f64, avg_candidates: f64) -> f64 {
    let rho_prune = 1.0 - rho_refine;
    (1.0 - rho_hit * rho_prune) * avg_candidates
}

/// One row of a τ sweep: the model's intermediate quantities at a given code
/// length, handy for the Fig. 12 / Fig. 15 experiments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TauEstimate {
    pub tau: u32,
    pub rho_hit: f64,
    pub rho_refine: f64,
    pub refine_io: f64,
}

/// Model estimate for the **equi-width** scheme at code length τ (closed
/// form, §4.2.1): bucket width `w = range / 2^τ`, floored at the quantizer's
/// level resolution (finer buckets than levels are impossible).
pub fn estimate_equiwidth(
    stats: &WorkloadStats,
    cache_bytes: usize,
    quantizer: &Quantizer,
    tau: u32,
) -> TauEstimate {
    let items = compact_cache_items(cache_bytes, stats.dim, tau);
    let rho_hit = if items >= stats.n_points {
        1.0
    } else {
        hff_hit_ratio(stats, items)
    };
    let range = (quantizer.max() - quantizer.min()) as f64;
    let buckets = 2f64.powi(tau as i32).min(quantizer.n_dom() as f64);
    let w = range / buckets;
    let rho_refine = rho_refine_equiwidth(stats.dim, w, stats.d_max);
    TauEstimate {
        tau,
        rho_hit,
        rho_refine,
        refine_io: estimate_refine_io(rho_hit, rho_refine, stats.avg_candidates),
    }
}

/// §4.2: sweep τ over `tau_range` with the equi-width closed form and return
/// the estimate minimizing refinement I/O.
pub fn optimal_tau_equiwidth(
    stats: &WorkloadStats,
    cache_bytes: usize,
    quantizer: &Quantizer,
    tau_range: std::ops::RangeInclusive<u32>,
) -> TauEstimate {
    tau_range
        .map(|tau| estimate_equiwidth(stats, cache_bytes, quantizer, tau))
        .min_by(|a, b| a.refine_io.partial_cmp(&b.refine_io).expect("non-NaN"))
        .expect("non-empty tau range")
}

/// Generic tuner (§4.2 opening): evaluate a caller-supplied model at each τ
/// and keep the minimizer. Used for non-equi-width histograms, where the
/// caller rebuilds the histogram per τ and estimates `ρ_refine` via
/// [`rho_refine_histogram`].
pub fn optimal_tau_by<F>(tau_range: std::ops::RangeInclusive<u32>, estimate: F) -> TauEstimate
where
    F: FnMut(u32) -> TauEstimate,
{
    tau_range
        .map(estimate)
        .min_by(|a, b| a.refine_io.partial_cmp(&b.refine_io).expect("non-NaN"))
        .expect("non-empty tau range")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::classic::equi_width;

    fn stats() -> WorkloadStats {
        // Zipf-ish frequency tail over 1000 requested points.
        let freq_desc: Vec<u64> = (1..=1000u64).map(|i| 10_000 / i).collect();
        WorkloadStats {
            freq_desc,
            avg_candidates: 200.0,
            d_max: 10.0,
            n_points: 5000,
            dim: 50,
        }
    }

    #[test]
    fn cache_item_counts() {
        assert_eq!(exact_cache_items(600 * 10, 150), 10);
        // τ=10, d=150 → 192 bytes/point.
        assert_eq!(compact_cache_items(192 * 7, 150, 10), 7);
        // Compact cache holds more items than exact at the same budget.
        assert!(compact_cache_items(1 << 20, 150, 10) > exact_cache_items(1 << 20, 150));
    }

    #[test]
    fn hff_hit_ratio_monotone_in_items() {
        let s = stats();
        let mut last = 0.0;
        for items in [0usize, 1, 10, 100, 1000, 2000] {
            let r = hff_hit_ratio(&s, items);
            assert!(r >= last);
            assert!((0.0..=1.0).contains(&r));
            last = r;
        }
        assert_eq!(hff_hit_ratio(&s, 1000), 1.0);
    }

    #[test]
    fn theorem1_bound_shape() {
        assert_eq!(theorem1_hit_bound(0.5, 32, false), 0.5);
        assert_eq!(theorem1_hit_bound(0.1, 8, false), 0.4);
        assert_eq!(theorem1_hit_bound(0.9, 8, false), 1.0); // capped
        assert_eq!(theorem1_hit_bound(0.01, 16, true), 1.0);
    }

    #[test]
    fn rho_refine_shrinks_with_buckets() {
        let r1 = rho_refine_equiwidth(100, 1.0, 50.0);
        let r2 = rho_refine_equiwidth(100, 0.25, 50.0);
        assert!(r2 < r1);
        assert_eq!(rho_refine_equiwidth(100, 1000.0, 1.0), 1.0); // capped
    }

    #[test]
    fn refine_io_decreases_with_pruning() {
        let base = estimate_refine_io(0.8, 1.0, 100.0); // no pruning power
        let good = estimate_refine_io(0.8, 0.1, 100.0);
        assert!((base - 100.0).abs() < 1e-9);
        assert!(good < base);
        assert!((good - (1.0 - 0.8 * 0.9) * 100.0).abs() < 1e-9);
    }

    #[test]
    fn tau_sweep_is_u_shaped_and_tuner_finds_minimum() {
        let s = stats();
        let quant = Quantizer::new(0.0, 100.0, 1024);
        let cache_bytes = 64 * 1024; // small enough that hit ratio matters
        let sweep: Vec<TauEstimate> = (1..=20)
            .map(|t| estimate_equiwidth(&s, cache_bytes, &quant, t))
            .collect();
        let best = optimal_tau_equiwidth(&s, cache_bytes, &quant, 1..=20);
        assert!(sweep.iter().all(|e| e.refine_io >= best.refine_io));
        // Extremes are worse than the interior optimum: τ=1 gives useless
        // bounds, τ=20 gives a tiny cache.
        assert!(sweep[0].refine_io > best.refine_io);
        assert!(sweep.last().expect("non-empty").refine_io > best.refine_io);
        assert!(best.tau > 1 && best.tau < 20);
    }

    #[test]
    fn histogram_rho_refine_uses_weighted_widths() {
        let quant = Quantizer::new(0.0, 64.0, 64);
        let mut f_prime = vec![0u64; 64];
        f_prime[10] = 100; // all workload mass on level 10
                           // Histogram with a singleton bucket at level 10 → ε ≈ level width only.
        let tight = Histogram::from_starts(vec![0, 10, 11], 64);
        let loose = equi_width(64, 2);
        let r_tight = rho_refine_histogram(&tight, &quant, &f_prime, 4, 100.0);
        let r_loose = rho_refine_histogram(&loose, &quant, &f_prime, 4, 100.0);
        assert!(r_tight < r_loose, "{r_tight} vs {r_loose}");
    }

    #[test]
    fn degenerate_inputs_are_safe() {
        let s = WorkloadStats {
            freq_desc: vec![],
            avg_candidates: 0.0,
            d_max: 0.0,
            n_points: 0,
            dim: 10,
        };
        assert_eq!(hff_hit_ratio(&s, 100), 0.0);
        assert_eq!(rho_refine_equiwidth(10, 1.0, 0.0), 1.0);
        let quant = Quantizer::new(0.0, 1.0, 16);
        let e = estimate_equiwidth(&s, 1024, &quant, 4);
        assert_eq!(e.refine_io, 0.0);
    }
}
