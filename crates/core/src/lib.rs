//! # hc-core
//!
//! Core building blocks of the *Exploit Every Bit* reproduction (Tang, Yiu,
//! Hua; TKDE 2016): datasets and distances, the discrete value domain,
//! histogram construction (including the paper's kNN-optimal histogram via
//! the Algorithm 2 dynamic program), bit-packed approximate points, sound
//! lower/upper distance bounds, the M1/M2/M3 histogram metrics, and the §4
//! cost model for tuning the code length τ.
//!
//! Everything here is pure and in-memory; disk simulation, indexes, caches
//! and the query pipeline live in the sibling crates (`hc-storage`,
//! `hc-index`, `hc-cache`, `hc-query`).
//!
//! ## Quick tour
//!
//! ```
//! use hc_core::prelude::*;
//!
//! // A tiny 2-d dataset (paper Figure 5a).
//! let ds = Dataset::from_rows(&[
//!     vec![2.0, 20.0], vec![10.0, 16.0], vec![19.0, 30.0],
//!     vec![26.0, 4.0], vec![11.0, 18.0], vec![3.0, 24.0],
//! ]);
//! let quant = Quantizer::new(0.0, 32.0, 32);
//!
//! // An equi-width histogram with 4 buckets (τ = 2) and its coding scheme.
//! let hist = HistogramKind::EquiWidth.build(&quant.frequency_array(ds.as_flat()), 4);
//! let scheme = GlobalScheme::new(hist, quant, ds.dim());
//!
//! // Encode p1 = (2, 20) → |00|10| and bound its distance from q = (9, 11).
//! let codes = scheme.encode(ds.point(PointId(0)));
//! let b = scheme.bounds(&[9.0, 11.0], &codes);
//! assert!(b.lb <= hc_core::distance::euclidean(&[9.0, 11.0], ds.point(PointId(0))));
//! ```

pub mod bounds;
pub mod codes;
pub mod cost_model;
pub mod dataset;
pub mod distance;
pub mod histogram;
pub mod metric;
pub mod normalize;
pub mod quantize;
pub mod scan;
pub mod scheme;

/// Convenient re-exports of the types most programs need.
pub mod prelude {
    pub use crate::bounds::DistBounds;
    pub use crate::codes::PackedCodes;
    pub use crate::cost_model::WorkloadStats;
    pub use crate::dataset::{Dataset, PointId};
    pub use crate::histogram::{Histogram, HistogramKind};
    pub use crate::normalize::Normalizer;
    pub use crate::quantize::Quantizer;
    pub use crate::scan::{BlockedCodes, QueryTables, ScanIntervals, Simd};
    pub use crate::scheme::{ApproxScheme, GlobalScheme, IndividualScheme, MultiDimScheme};
}
