//! Point and dataset representations.
//!
//! The paper (Definition 1) models each object as a `d`-dimensional point of
//! real values. We store a dataset as a single flat, row-major `f32` buffer so
//! that a point is a contiguous `&[f32]` slice — the same layout the sequential
//! dataset file on disk uses (`hc-storage::PointFile`), which keeps the
//! in-memory and on-disk geometry identical (important for page-level I/O
//! accounting).

use std::fmt;

/// Identifier of a point within a dataset (the paper's "object identifier").
///
/// LSH indexes and candidate sets carry `PointId`s rather than actual points;
/// resolving an id to its raw vector is exactly the operation that costs disk
/// I/O in the paper's model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PointId(pub u32);

impl PointId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PointId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl From<u32> for PointId {
    fn from(v: u32) -> Self {
        PointId(v)
    }
}

impl From<usize> for PointId {
    fn from(v: usize) -> Self {
        PointId(u32::try_from(v).expect("point id exceeds u32 range"))
    }
}

/// A dense, row-major collection of `d`-dimensional `f32` points.
///
/// This is the in-memory form of the paper's point set `P`. It is used both as
/// the source of truth when building indexes/histograms offline, and as the
/// backing store of the simulated disk file.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    dim: usize,
    values: Vec<f32>,
}

impl Dataset {
    /// Create a dataset from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `dim == 0` or `values.len()` is not a multiple of `dim`.
    pub fn from_flat(dim: usize, values: Vec<f32>) -> Self {
        assert!(dim > 0, "dimensionality must be positive");
        assert!(
            values.len().is_multiple_of(dim),
            "flat buffer length {} is not a multiple of dim {dim}",
            values.len()
        );
        Self { dim, values }
    }

    /// Create a dataset from a list of equally-sized rows.
    ///
    /// # Panics
    /// Panics if rows have inconsistent lengths or `rows` is empty.
    pub fn from_rows(rows: &[Vec<f32>]) -> Self {
        assert!(!rows.is_empty(), "dataset must contain at least one point");
        let dim = rows[0].len();
        let mut values = Vec::with_capacity(rows.len() * dim);
        for (i, row) in rows.iter().enumerate() {
            assert!(
                row.len() == dim,
                "row {i} has length {} != {dim}",
                row.len()
            );
            values.extend_from_slice(row);
        }
        Self::from_flat(dim, values)
    }

    /// An empty dataset with the given dimensionality (useful as a builder).
    pub fn with_dim(dim: usize) -> Self {
        assert!(dim > 0, "dimensionality must be positive");
        Self {
            dim,
            values: Vec::new(),
        }
    }

    /// Append one point.
    ///
    /// # Panics
    /// Panics if `point.len() != self.dim()`.
    pub fn push(&mut self, point: &[f32]) {
        assert_eq!(point.len(), self.dim, "point dimensionality mismatch");
        self.values.extend_from_slice(point);
    }

    /// Number of points.
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len() / self.dim
    }

    /// Whether the dataset holds no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Dimensionality `d`.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Borrow the point with the given id.
    ///
    /// # Panics
    /// Panics if the id is out of range.
    #[inline]
    pub fn point(&self, id: PointId) -> &[f32] {
        let i = id.index();
        &self.values[i * self.dim..(i + 1) * self.dim]
    }

    /// The flat row-major value buffer.
    #[inline]
    pub fn as_flat(&self) -> &[f32] {
        &self.values
    }

    /// Iterate over `(id, point)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (PointId, &[f32])> + '_ {
        self.values
            .chunks_exact(self.dim)
            .enumerate()
            .map(|(i, p)| (PointId::from(i), p))
    }

    /// Global minimum and maximum over *all* values of *all* dimensions.
    ///
    /// The paper's global histogram treats every dimension value as drawn from
    /// a single shared domain `[0..N_dom]` (Definition 6), normalizing first if
    /// dimensions differ in scale. This method supplies that shared range.
    ///
    /// Returns `(0.0, 1.0)` for an empty dataset, and widens a degenerate
    /// range (`min == max`) by one ulp-ish epsilon so downstream quantizers
    /// never divide by zero.
    pub fn value_range(&self) -> (f32, f32) {
        let mut min = f32::INFINITY;
        let mut max = f32::NEG_INFINITY;
        for &v in &self.values {
            debug_assert!(v.is_finite(), "dataset contains non-finite value {v}");
            if v < min {
                min = v;
            }
            if v > max {
                max = v;
            }
        }
        if !min.is_finite() || !max.is_finite() {
            return (0.0, 1.0);
        }
        if min == max {
            max = min + f32::max(min.abs() * 1e-6, 1e-6);
        }
        (min, max)
    }

    /// Per-dimension `(min, max)` ranges (used by individual-dimension
    /// histograms, paper §3.6.2, and by R-tree bulk loading).
    pub fn per_dim_ranges(&self) -> Vec<(f32, f32)> {
        let mut ranges = vec![(f32::INFINITY, f32::NEG_INFINITY); self.dim];
        for row in self.values.chunks_exact(self.dim) {
            for (j, &v) in row.iter().enumerate() {
                let r = &mut ranges[j];
                if v < r.0 {
                    r.0 = v;
                }
                if v > r.1 {
                    r.1 = v;
                }
            }
        }
        for r in &mut ranges {
            if !r.0.is_finite() || !r.1.is_finite() {
                *r = (0.0, 1.0);
            } else if r.0 == r.1 {
                r.1 = r.0 + f32::max(r.0.abs() * 1e-6, 1e-6);
            }
        }
        ranges
    }

    /// Bytes one raw point occupies on disk / in an exact cache
    /// (`d · 4` for `f32` values; the paper's `L_value = 32` bits).
    #[inline]
    pub fn point_bytes(&self) -> usize {
        self.dim * std::mem::size_of::<f32>()
    }

    /// Total size of the raw dataset file in bytes.
    #[inline]
    pub fn file_bytes(&self) -> usize {
        self.len() * self.point_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_rows_round_trips_points() {
        let ds = Dataset::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        assert_eq!(ds.len(), 3);
        assert_eq!(ds.dim(), 2);
        assert_eq!(ds.point(PointId(0)), &[1.0, 2.0]);
        assert_eq!(ds.point(PointId(2)), &[5.0, 6.0]);
    }

    #[test]
    fn iter_yields_ids_in_order() {
        let ds = Dataset::from_rows(&[vec![1.0], vec![2.0]]);
        let ids: Vec<u32> = ds.iter().map(|(id, _)| id.0).collect();
        assert_eq!(ids, vec![0, 1]);
    }

    #[test]
    fn value_range_spans_all_dims() {
        let ds = Dataset::from_rows(&[vec![-3.0, 10.0], vec![2.0, 7.5]]);
        assert_eq!(ds.value_range(), (-3.0, 10.0));
    }

    #[test]
    fn value_range_widens_degenerate_range() {
        let ds = Dataset::from_rows(&[vec![5.0, 5.0]]);
        let (lo, hi) = ds.value_range();
        assert_eq!(lo, 5.0);
        assert!(hi > lo);
    }

    #[test]
    fn per_dim_ranges_are_independent() {
        let ds = Dataset::from_rows(&[vec![0.0, 100.0], vec![1.0, 50.0]]);
        let r = ds.per_dim_ranges();
        assert_eq!(r[0], (0.0, 1.0));
        assert_eq!(r[1], (50.0, 100.0));
    }

    #[test]
    fn push_extends_dataset() {
        let mut ds = Dataset::with_dim(3);
        assert!(ds.is_empty());
        ds.push(&[1.0, 2.0, 3.0]);
        ds.push(&[4.0, 5.0, 6.0]);
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.point(PointId(1)), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn byte_accounting_matches_f32_layout() {
        let ds = Dataset::from_rows(&vec![vec![0.0; 150]; 4]);
        assert_eq!(ds.point_bytes(), 600); // 150-d point = 600 bytes, as in the paper's Table 2
        assert_eq!(ds.file_bytes(), 2400);
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn from_flat_rejects_ragged_buffer() {
        let _ = Dataset::from_flat(3, vec![1.0; 4]);
    }

    #[test]
    #[should_panic(expected = "dimensionality mismatch")]
    fn push_rejects_wrong_dim() {
        let mut ds = Dataset::with_dim(2);
        ds.push(&[1.0]);
    }
}
