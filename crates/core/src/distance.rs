//! Euclidean distance (the paper's Definition 2) and helpers.
//!
//! All pruning logic in the library operates on *squared* distances where
//! possible to avoid `sqrt` in hot loops; the public query results report true
//! Euclidean distances.

/// Squared Euclidean distance `||q - c||²`.
///
/// Accumulates in four independent f64 lanes (lane `l` sums dimensions
/// `4t + l`), reduced as `(a0 + a1) + (a2 + a3)` — the fixed association
/// both the portable and the AVX2 kernel produce, so results are
/// bit-identical regardless of which one runs. f64 accumulation throughout:
/// at d = 960 (SOGOU) f32 accumulation loses enough precision to flip prune
/// decisions near the ub_k threshold.
///
/// # Panics
/// Debug-asserts equal dimensionality.
#[inline]
pub fn sq_euclidean(q: &[f32], c: &[f32]) -> f64 {
    #[cfg(target_arch = "x86_64")]
    if crate::scan::Simd::Auto.use_avx2() {
        // SAFETY: AVX2 availability just checked.
        return unsafe { sq_euclidean_avx2(q, c) };
    }
    sq_euclidean_portable(q, c)
}

/// Portable 4-lane kernel — the reference the SIMD path must match bit-for-
/// bit (asserted by the scan equivalence battery).
#[inline]
pub fn sq_euclidean_portable(q: &[f32], c: &[f32]) -> f64 {
    debug_assert_eq!(q.len(), c.len(), "dimensionality mismatch");
    let n = q.len();
    let mut acc = [0.0f64; 4];
    let full = n - n % 4;
    for t in (0..full).step_by(4) {
        for l in 0..4 {
            let diff = (q[t + l] - c[t + l]) as f64;
            acc[l] += diff * diff;
        }
    }
    for i in full..n {
        let diff = (q[i] - c[i]) as f64;
        acc[i % 4] += diff * diff;
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3])
}

/// AVX2 kernel: f32 subtract, widen to f64, multiply-add per lane — the same
/// operation sequence as [`sq_euclidean_portable`] per lane (no FMA, which
/// would change rounding), with the ragged tail handled scalar in the same
/// lane assignment.
///
/// # Safety
/// Caller must ensure the CPU supports AVX2.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
pub unsafe fn sq_euclidean_avx2(q: &[f32], c: &[f32]) -> f64 {
    use std::arch::x86_64::*;
    debug_assert_eq!(q.len(), c.len(), "dimensionality mismatch");
    let n = q.len();
    let full = n - n % 4;
    let mut vacc = _mm256_setzero_pd();
    for t in (0..full).step_by(4) {
        let a = _mm_loadu_ps(q.as_ptr().add(t));
        let b = _mm_loadu_ps(c.as_ptr().add(t));
        let diff = _mm256_cvtps_pd(_mm_sub_ps(a, b));
        vacc = _mm256_add_pd(vacc, _mm256_mul_pd(diff, diff));
    }
    let mut acc = [0.0f64; 4];
    _mm256_storeu_pd(acc.as_mut_ptr(), vacc);
    for i in full..n {
        let diff = (*q.get_unchecked(i) - *c.get_unchecked(i)) as f64;
        acc[i % 4] += diff * diff;
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3])
}

/// Euclidean distance `||q - c||` (paper Definition 2).
#[inline]
pub fn euclidean(q: &[f32], c: &[f32]) -> f64 {
    sq_euclidean(q, c).sqrt()
}

/// A `(distance, payload)` pair ordered by distance. Useful for k-th smallest
/// selections where `f64` distances must be totally ordered.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistEntry<T> {
    pub dist: f64,
    pub item: T,
}

impl<T> DistEntry<T> {
    pub fn new(dist: f64, item: T) -> Self {
        debug_assert!(!dist.is_nan(), "NaN distance");
        Self { dist, item }
    }
}

impl<T: PartialEq> Eq for DistEntry<T> {}

impl<T: PartialEq> PartialOrd for DistEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<T: PartialEq> Ord for DistEntry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.dist
            .partial_cmp(&other.dist)
            .expect("distances must not be NaN")
    }
}

/// Return the k-th smallest value (1-indexed: `k = 1` is the minimum) of a
/// slice of non-NaN `f64`s, or `f64::INFINITY` when fewer than `k` values
/// exist. This mirrors Algorithm 1 lines 7–8, where `lb_k`/`ub_k` are the k-th
/// minima over the candidate set.
pub fn kth_smallest(values: &[f64], k: usize) -> f64 {
    assert!(k >= 1, "k must be at least 1");
    if values.len() < k {
        return f64::INFINITY;
    }
    // Selection via a bounded max-heap of size k: O(n log k), no allocation of
    // a full sorted copy. Candidate sets are small (hundreds), so this is
    // plenty fast and avoids perturbing the caller's ordering.
    let mut heap = std::collections::BinaryHeap::with_capacity(k);
    for &v in values {
        debug_assert!(!v.is_nan());
        if heap.len() < k {
            heap.push(DistEntry::new(v, ()));
        } else if v < heap.peek().expect("non-empty").dist {
            heap.pop();
            heap.push(DistEntry::new(v, ()));
        }
    }
    heap.peek().expect("len >= k").dist
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn euclidean_matches_hand_computation() {
        // Paper §3.2 example: q=(9,11), p2 bucket ([8..15],[16..23]) has
        // dist+ = sqrt(6² + 12²) = 13.42; here we check the plain distance.
        let q = [9.0, 11.0];
        let p = [10.0, 16.0];
        let d = euclidean(&q, &p);
        assert!((d - (1.0f64 + 25.0).sqrt()).abs() < 1e-9);
    }

    #[test]
    fn sq_euclidean_zero_for_identical_points() {
        let p = [1.5, -2.5, 3.25];
        assert_eq!(sq_euclidean(&p, &p), 0.0);
    }

    #[test]
    fn sq_euclidean_is_symmetric() {
        let a = [0.5, 1.0, -4.0];
        let b = [2.0, -1.0, 0.0];
        assert_eq!(sq_euclidean(&a, &b), sq_euclidean(&b, &a));
    }

    #[test]
    fn dispatch_matches_portable_kernel_bitwise() {
        // Whatever kernel `sq_euclidean` resolves to must agree with the
        // portable reference to the last bit, across ragged tails.
        for d in [1usize, 2, 3, 4, 5, 7, 8, 31, 150, 960] {
            let q: Vec<f32> = (0..d).map(|i| (i as f32 * 0.713).sin() * 3.0).collect();
            let c: Vec<f32> = (0..d).map(|i| (i as f32 * 1.37).cos() * 2.0).collect();
            let got = sq_euclidean(&q, &c);
            let want = sq_euclidean_portable(&q, &c);
            assert_eq!(got.to_bits(), want.to_bits(), "d={d}");
        }
    }

    #[test]
    fn lane_reduction_matches_sequential_below_four_dims() {
        // For d < 4 the unused lanes stay 0.0, so the lane reduction equals
        // the old sequential sum exactly — hand-computed tests stay valid.
        let q = [9.0f32, 11.0, 2.5];
        let c = [10.0f32, 16.0, -1.5];
        let mut seq = 0.0f64;
        for i in 0..3 {
            let diff = (q[i] - c[i]) as f64;
            seq += diff * diff;
        }
        assert_eq!(sq_euclidean(&q, &c).to_bits(), seq.to_bits());
    }

    #[test]
    fn kth_smallest_basic() {
        let v = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(kth_smallest(&v, 1), 1.0);
        assert_eq!(kth_smallest(&v, 3), 3.0);
        assert_eq!(kth_smallest(&v, 5), 5.0);
    }

    #[test]
    fn kth_smallest_with_too_few_values_is_infinite() {
        assert_eq!(kth_smallest(&[1.0, 2.0], 3), f64::INFINITY);
        assert_eq!(kth_smallest(&[], 1), f64::INFINITY);
    }

    #[test]
    fn kth_smallest_handles_duplicates() {
        let v = [2.0, 2.0, 2.0, 1.0];
        assert_eq!(kth_smallest(&v, 2), 2.0);
        assert_eq!(kth_smallest(&v, 4), 2.0);
    }

    #[test]
    fn dist_entry_orders_by_distance() {
        let mut v = [DistEntry::new(2.0, 'b'), DistEntry::new(1.0, 'a')];
        v.sort();
        assert_eq!(v[0].item, 'a');
    }
}
