//! Euclidean distance (the paper's Definition 2) and helpers.
//!
//! All pruning logic in the library operates on *squared* distances where
//! possible to avoid `sqrt` in hot loops; the public query results report true
//! Euclidean distances.

/// Squared Euclidean distance `||q - c||²`.
///
/// # Panics
/// Debug-asserts equal dimensionality.
#[inline]
pub fn sq_euclidean(q: &[f32], c: &[f32]) -> f64 {
    debug_assert_eq!(q.len(), c.len(), "dimensionality mismatch");
    // f64 accumulation: at d = 960 (SOGOU) f32 accumulation loses enough
    // precision to flip prune decisions near the ub_k threshold.
    let mut acc = 0.0f64;
    for (&a, &b) in q.iter().zip(c.iter()) {
        let diff = (a - b) as f64;
        acc += diff * diff;
    }
    acc
}

/// Euclidean distance `||q - c||` (paper Definition 2).
#[inline]
pub fn euclidean(q: &[f32], c: &[f32]) -> f64 {
    sq_euclidean(q, c).sqrt()
}

/// A `(distance, payload)` pair ordered by distance. Useful for k-th smallest
/// selections where `f64` distances must be totally ordered.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistEntry<T> {
    pub dist: f64,
    pub item: T,
}

impl<T> DistEntry<T> {
    pub fn new(dist: f64, item: T) -> Self {
        debug_assert!(!dist.is_nan(), "NaN distance");
        Self { dist, item }
    }
}

impl<T: PartialEq> Eq for DistEntry<T> {}

impl<T: PartialEq> PartialOrd for DistEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<T: PartialEq> Ord for DistEntry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.dist
            .partial_cmp(&other.dist)
            .expect("distances must not be NaN")
    }
}

/// Return the k-th smallest value (1-indexed: `k = 1` is the minimum) of a
/// slice of non-NaN `f64`s, or `f64::INFINITY` when fewer than `k` values
/// exist. This mirrors Algorithm 1 lines 7–8, where `lb_k`/`ub_k` are the k-th
/// minima over the candidate set.
pub fn kth_smallest(values: &[f64], k: usize) -> f64 {
    assert!(k >= 1, "k must be at least 1");
    if values.len() < k {
        return f64::INFINITY;
    }
    // Selection via a bounded max-heap of size k: O(n log k), no allocation of
    // a full sorted copy. Candidate sets are small (hundreds), so this is
    // plenty fast and avoids perturbing the caller's ordering.
    let mut heap = std::collections::BinaryHeap::with_capacity(k);
    for &v in values {
        debug_assert!(!v.is_nan());
        if heap.len() < k {
            heap.push(DistEntry::new(v, ()));
        } else if v < heap.peek().expect("non-empty").dist {
            heap.pop();
            heap.push(DistEntry::new(v, ()));
        }
    }
    heap.peek().expect("len >= k").dist
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn euclidean_matches_hand_computation() {
        // Paper §3.2 example: q=(9,11), p2 bucket ([8..15],[16..23]) has
        // dist+ = sqrt(6² + 12²) = 13.42; here we check the plain distance.
        let q = [9.0, 11.0];
        let p = [10.0, 16.0];
        let d = euclidean(&q, &p);
        assert!((d - (1.0f64 + 25.0).sqrt()).abs() < 1e-9);
    }

    #[test]
    fn sq_euclidean_zero_for_identical_points() {
        let p = [1.5, -2.5, 3.25];
        assert_eq!(sq_euclidean(&p, &p), 0.0);
    }

    #[test]
    fn sq_euclidean_is_symmetric() {
        let a = [0.5, 1.0, -4.0];
        let b = [2.0, -1.0, 0.0];
        assert_eq!(sq_euclidean(&a, &b), sq_euclidean(&b, &a));
    }

    #[test]
    fn kth_smallest_basic() {
        let v = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(kth_smallest(&v, 1), 1.0);
        assert_eq!(kth_smallest(&v, 3), 3.0);
        assert_eq!(kth_smallest(&v, 5), 5.0);
    }

    #[test]
    fn kth_smallest_with_too_few_values_is_infinite() {
        assert_eq!(kth_smallest(&[1.0, 2.0], 3), f64::INFINITY);
        assert_eq!(kth_smallest(&[], 1), f64::INFINITY);
    }

    #[test]
    fn kth_smallest_handles_duplicates() {
        let v = [2.0, 2.0, 2.0, 1.0];
        assert_eq!(kth_smallest(&v, 2), 2.0);
        assert_eq!(kth_smallest(&v, 4), 2.0);
    }

    #[test]
    fn dist_entry_orders_by_distance() {
        let mut v = [DistEntry::new(2.0, 'b'), DistEntry::new(1.0, 'a')];
        v.sort();
        assert_eq!(v[0].item, 'a');
    }
}
