//! The scalar-vs-vectorized equivalence battery for the blocked compact
//! scan (`hc_core::scan`).
//!
//! A word-parallel bound kernel that is *almost* right silently breaks the
//! exactness guarantee every bench asserts, so equivalence here is bitwise
//! (`f64::to_bits`), never approximate:
//!
//! * blocked kernel ≡ scalar `ApproxScheme::bounds` — for arbitrary dim/τ
//!   (including word-straddling τ = 5, 7, 11 and the τ = 32 mask edge),
//!   random schemes, queries, lanes-per-block, and ragged tail blocks;
//! * AVX2 gather path ≡ scalar-blocked fallback under forced kernel
//!   selection (`Simd::ForceAvx2` vs `Simd::Scalar`);
//! * the 4-lane exact-distance kernel's AVX2 path ≡ its portable reference.
//!
//! CI runs this suite three times: default, `RUSTFLAGS="-C
//! target-feature=+avx2"`, and `HC_SCAN_SIMD=off` (see `ci.sh`).

use std::sync::Arc;

use hc_core::bounds::DistBounds;
use hc_core::codes::PackedCodes;
use hc_core::dataset::Dataset;
use hc_core::distance::sq_euclidean_portable;
use hc_core::histogram::classic::{equi_depth, equi_width};
use hc_core::quantize::Quantizer;
use hc_core::scan::{
    avx2_available, scan_slots, BlockedCodes, QueryTables, ScanIntervals, ScanScratch, Simd,
};
use hc_core::scheme::{ApproxScheme, GlobalScheme, IndividualScheme};
use proptest::prelude::*;

/// Assert two bound pairs are bit-identical (not merely close).
fn assert_bits_eq(got: DistBounds, want: DistBounds, ctx: &str) {
    assert_eq!(
        got.lb.to_bits(),
        want.lb.to_bits(),
        "{ctx}: lb {} vs {}",
        got.lb,
        want.lb
    );
    assert_eq!(
        got.ub.to_bits(),
        want.ub.to_bits(),
        "{ctx}: ub {} vs {}",
        got.ub,
        want.ub
    );
}

/// Synthetic per-dimension interval tables for τ too large to enumerate 2^τ
/// buckets (τ up to 32 packs at full width while indexing a small table —
/// codes are bucket ids, never required to span the whole code space).
fn synth_shared(nb: usize, seed: i64) -> Vec<(f32, f32)> {
    (0..nb)
        .map(|b| {
            let lo = (b as f32) * 0.37 + (seed % 7) as f32 * 0.11 - 2.0;
            (lo, lo + 0.25 + (b % 3) as f32 * 0.4)
        })
        .collect()
}

fn run_all_kernels(
    tables: &QueryTables,
    bc: &BlockedCodes,
    slots: &[(u32, u32)],
    n: usize,
) -> Vec<(DistBounds, DistBounds)> {
    let mut scalar = vec![DistBounds::UNKNOWN; n];
    let mut simd = vec![DistBounds::UNKNOWN; n];
    let mut scratch = ScanScratch::default();
    scan_slots(tables, bc, slots, &mut scalar, &mut scratch, Simd::Scalar);
    let forced = if avx2_available() {
        Simd::ForceAvx2
    } else {
        Simd::Auto
    };
    scan_slots(tables, bc, slots, &mut simd, &mut scratch, forced);
    scalar.into_iter().zip(simd).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Synthetic schemes across the full τ range, arbitrary lanes-per-block
    /// (ragged tails included): blocked scalar ≡ table-free reference, and
    /// the SIMD kernel ≡ blocked scalar, all bitwise.
    #[test]
    fn blocked_matches_scalar_arbitrary_tau(
        tau_i in 0usize..12,
        d in 1usize..40,
        lanes_i in 0usize..6,
        n in 1usize..90,
        seed in 0i64..1000,
    ) {
        const TAUS: [u32; 12] = [1, 2, 3, 5, 7, 8, 11, 13, 16, 21, 27, 32];
        const LANES: [usize; 6] = [1, 3, 5, 8, 17, 64];
        let tau = TAUS[tau_i];
        let lanes = LANES[lanes_i];
        // Bucket count decoupled from 2^τ for big τ (tables are sized by
        // the scheme's bucket count, never 2^τ) but capped so codes fit.
        let nb = 24usize.min(1usize << tau.min(8));
        let real = synth_shared(nb, seed);
        let intervals = ScanIntervals::Shared(&real);
        let q: Vec<f32> = (0..d).map(|j| ((j as i64 * 31 + seed) % 17) as f32 * 0.3 - 2.0).collect();
        let tables = QueryTables::build(&q, &intervals);

        let mut bc = BlockedCodes::with_lanes(d, tau, lanes);
        let mut reference = Vec::with_capacity(n);
        for slot in 0..n {
            let codes: Vec<u32> = (0..d)
                .map(|j| ((slot as i64 * 131 + j as i64 * 17 + seed) % nb as i64) as u32)
                .collect();
            bc.set_lane(slot, codes.iter().copied());
            // Reference: the scalar interval math, dimension-ascending.
            let mut acc = hc_core::bounds::BoundsAcc::new();
            for (j, &c) in codes.iter().enumerate() {
                let (lo, hi) = real[c as usize];
                acc.add(q[j], lo, hi);
            }
            reference.push(acc.finish());
        }
        let slots: Vec<(u32, u32)> = (0..n as u32).map(|s| (s, s)).collect();
        for (i, (scalar, simd)) in run_all_kernels(&tables, &bc, &slots, n).into_iter().enumerate() {
            assert_bits_eq(scalar, reference[i], &format!("scalar tau={tau} lanes={lanes} slot={i}"));
            assert_bits_eq(simd, reference[i], &format!("simd tau={tau} lanes={lanes} slot={i}"));
        }
    }

    /// Real global scheme end to end: encode → transpose → blocked scan vs
    /// `ApproxScheme::bounds` over the packed words. Random subsets probe
    /// sparse and dense block groups alike.
    #[test]
    fn global_scheme_blocked_matches_bounds(
        buckets_i in 0usize..5,
        d in 1usize..24,
        n in 1usize..100,
        pick_every in 1usize..5,
        seed in 0u64..500,
    ) {
        const BUCKETS: [u32; 5] = [2, 4, 8, 32, 128];
        let buckets = BUCKETS[buckets_i];
        let rows: Vec<Vec<f32>> = (0..n.max(2))
            .map(|i| (0..d).map(|j| ((i as u64 * 37 + j as u64 * 11 + seed) % 97) as f32).collect())
            .collect();
        let ds = Dataset::from_rows(&rows);
        let (lo, hi) = ds.value_range();
        let scheme = GlobalScheme::new(equi_width(256, buckets), Quantizer::new(lo, hi, 256), d);
        let q: Vec<f32> = (0..d).map(|j| ((j as u64 * 13 + seed) % 97) as f32).collect();

        let mut pc = PackedCodes::new(d, scheme.tau());
        for row in &rows {
            let mut w = Vec::new();
            scheme.encode_into(row, &mut w);
            pc.push(hc_core::codes::CodeIter::new(&w, scheme.tau(), d));
        }
        let bc = BlockedCodes::from_packed(&pc);
        let intervals = scheme.scan_intervals().expect("global scheme has intervals");
        let tables = QueryTables::build(&q, &intervals);

        let picked: Vec<u32> = (0..pc.len() as u32).step_by(pick_every).collect();
        let slots: Vec<(u32, u32)> = picked.iter().enumerate().map(|(i, &s)| (s, i as u32)).collect();
        for (i, (scalar, simd)) in
            run_all_kernels(&tables, &bc, &slots, picked.len()).into_iter().enumerate()
        {
            let want = scheme.bounds(&q, pc.point_words(picked[i] as usize));
            assert_bits_eq(scalar, want, &format!("scalar b={buckets} slot={}", picked[i]));
            assert_bits_eq(simd, want, &format!("simd b={buckets} slot={}", picked[i]));
        }
    }

    /// Individual (per-dimension histogram) scheme: ragged per-dim bucket
    /// counts exercise the table stride padding.
    #[test]
    fn individual_scheme_blocked_matches_bounds(
        d in 2usize..10,
        n in 2usize..60,
        seed in 0u64..300,
    ) {
        let rows: Vec<Vec<f32>> = (0..n)
            .map(|i| (0..d).map(|j| ((i as u64 * 41 + j as u64 * 29 + seed) % 89) as f32).collect())
            .collect();
        let ds = Dataset::from_rows(&rows);
        let mut hists = Vec::new();
        let mut quants = Vec::new();
        for j in 0..d {
            let col: Vec<f32> = rows.iter().map(|r| r[j]).collect();
            let quant = Quantizer::new(-1.0, 90.0, 128);
            let freq = quant.frequency_array(&col);
            // Ragged: bucket count varies per dimension.
            let b = 2 + (j % 4) as u32 * 2;
            hists.push(equi_depth(&freq, b));
            quants.push(quant);
        }
        let scheme = IndividualScheme::new(hists, quants);
        let q: Vec<f32> = (0..d).map(|j| ((j as u64 * 53 + seed) % 89) as f32).collect();

        let mut pc = PackedCodes::new(d, scheme.tau());
        for row in &rows {
            let mut w = Vec::new();
            scheme.encode_into(row, &mut w);
            pc.push(hc_core::codes::CodeIter::new(&w, scheme.tau(), d));
        }
        let bc = BlockedCodes::from_packed(&pc);
        let tables = QueryTables::build(&q, &scheme.scan_intervals().expect("per-dim intervals"));
        let slots: Vec<(u32, u32)> = (0..n as u32).map(|s| (s, s)).collect();
        for (i, (scalar, simd)) in run_all_kernels(&tables, &bc, &slots, n).into_iter().enumerate() {
            let want = scheme.bounds(&q, pc.point_words(i));
            assert_bits_eq(scalar, want, &format!("scalar ihc slot={i}"));
            assert_bits_eq(simd, want, &format!("simd ihc slot={i}"));
        }
        let _ = ds;
    }

    /// The 4-lane exact-distance kernel: AVX2 ≡ portable, bitwise, for
    /// arbitrary dimensionality (ragged tails) and values.
    #[test]
    fn exact_distance_kernels_bit_identical(
        d in 1usize..300,
        seed in 0u64..1000,
    ) {
        let q: Vec<f32> = (0..d).map(|j| ((j as u64 * 71 + seed) % 113) as f32 * 0.17 - 9.0).collect();
        let c: Vec<f32> = (0..d).map(|j| ((j as u64 * 43 + seed * 3) % 113) as f32 * 0.13 - 7.0).collect();
        let portable = sq_euclidean_portable(&q, &c);
        let dispatched = hc_core::distance::sq_euclidean(&q, &c);
        prop_assert_eq!(portable.to_bits(), dispatched.to_bits());
        #[cfg(target_arch = "x86_64")]
        if avx2_available() {
            // SAFETY: availability checked.
            let simd = unsafe { hc_core::distance::sq_euclidean_avx2(&q, &c) };
            prop_assert_eq!(portable.to_bits(), simd.to_bits());
        }
    }
}

/// Deterministic sweep of every word-straddling τ with dense block groups —
/// the exact configurations the proptests sample, pinned so a CI run can
/// never miss them.
#[test]
fn straddling_taus_dense_blocks_exhaustive() {
    for tau in [5u32, 7, 11] {
        for lanes in [64usize, 7] {
            let d = 19;
            let nb = 24;
            let real = synth_shared(nb, tau as i64);
            let q: Vec<f32> = (0..d).map(|j| j as f32 * 0.21 - 1.0).collect();
            let tables = QueryTables::build(&q, &ScanIntervals::Shared(&real));
            let mut bc = BlockedCodes::with_lanes(d, tau, lanes);
            let n = 130; // several blocks + ragged tail
            for slot in 0..n {
                bc.set_lane(slot, (0..d).map(|j| ((slot * 7 + j * 3) % nb) as u32));
            }
            let slots: Vec<(u32, u32)> = (0..n as u32).map(|s| (s, s)).collect();
            for (i, (scalar, simd)) in run_all_kernels(&tables, &bc, &slots, n)
                .into_iter()
                .enumerate()
            {
                let want = tables.lane_bounds(bc.lane_codes(i));
                assert_bits_eq(scalar, want, &format!("tau={tau} lanes={lanes} slot={i}"));
                assert_bits_eq(simd, want, &format!("tau={tau} lanes={lanes} slot={i}"));
            }
        }
    }
}

/// The compact cache consumes schemes through `Arc<dyn ApproxScheme>`; make
/// sure interval access survives the trait object.
#[test]
fn scan_intervals_through_trait_object() {
    let rows: Vec<Vec<f32>> = (0..32)
        .map(|i| vec![i as f32, (i * 3 % 17) as f32])
        .collect();
    let ds = Dataset::from_rows(&rows);
    let (lo, hi) = ds.value_range();
    let scheme: Arc<dyn ApproxScheme> = Arc::new(GlobalScheme::new(
        equi_width(64, 8),
        Quantizer::new(lo, hi, 64),
        2,
    ));
    let q = [3.0f32, 5.0];
    let tables = QueryTables::build(&q, &scheme.scan_intervals().expect("intervals"));
    let words = scheme.encode(&rows[7]);
    let want = scheme.bounds(&q, &words);
    let got = tables.lane_bounds(hc_core::codes::CodeIter::new(&words, scheme.tau(), 2));
    assert_bits_eq(got, want, "trait object");
}
