//! Synthetic high-dimensional feature generators.
//!
//! The paper evaluates on image feature datasets we cannot redistribute
//! (NUS-WIDE and IMGNET color histograms, SOGOU GIST descriptors). These
//! generators produce data with the *statistical shape* the method's
//! behaviour depends on — clustered, non-uniform per-dimension distributions
//! with realistic dimensionalities — as argued in DESIGN.md §4:
//!
//! * [`gaussian_mixture`] — generic clustered data (the workhorse),
//! * [`color_histogram_like`] — sparse, non-negative, L1-normalized vectors
//!   mimicking color histograms (NUS-WIDE / IMGNET style),
//! * [`gist_like`] — dense, per-dimension-correlated vectors in `[0, 1]`
//!   mimicking GIST descriptors (SOGOU style).

use hc_core::dataset::Dataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn gaussian(rng: &mut StdRng) -> f64 {
    // Box–Muller (one value per call; simple and adequate here).
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// A mixture of `clusters` isotropic Gaussians with centers uniform in
/// `[0, spread]^d` and the given per-cluster standard deviation.
pub fn gaussian_mixture(
    n: usize,
    d: usize,
    clusters: usize,
    spread: f32,
    sigma: f32,
    seed: u64,
) -> Dataset {
    assert!(n > 0 && d > 0 && clusters > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    let centers: Vec<Vec<f32>> = (0..clusters)
        .map(|_| (0..d).map(|_| rng.gen_range(0.0..spread)).collect())
        .collect();
    let mut values = Vec::with_capacity(n * d);
    for i in 0..n {
        let c = &centers[i % clusters];
        for &cj in c.iter() {
            values.push(cj + sigma * gaussian(&mut rng) as f32);
        }
    }
    Dataset::from_flat(d, values)
}

/// Sparse, non-negative, L1-normalized vectors: most mass on a few "color
/// bins" per cluster, the rest near zero — the skewed per-dimension value
/// distribution of color histograms.
pub fn color_histogram_like(n: usize, d: usize, clusters: usize, seed: u64) -> Dataset {
    assert!(n > 0 && d > 0 && clusters > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    // Each cluster prefers ~8 bins; clusters share bins often enough (random
    // draws over d bins) that per-dimension values alone do not separate
    // them — the regime real color histograms live in, where coarse 1–2-bit
    // codes carry little information (paper Fig. 10).
    let hot_bins: Vec<Vec<usize>> = (0..clusters)
        .map(|_| (0..8.min(d)).map(|_| rng.gen_range(0..d)).collect())
        .collect();
    let mut values = Vec::with_capacity(n * d);
    let mut row = vec![0.0f32; d];
    for i in 0..n {
        row.iter_mut().for_each(|v| *v = 0.0);
        for &b in &hot_bins[i % clusters] {
            row[b] += rng.gen_range(0.15..0.6);
        }
        // Heavier background noise blurs per-dimension separability.
        for _ in 0..8 {
            let b = rng.gen_range(0..d);
            row[b] += rng.gen_range(0.0..0.15);
        }
        let sum: f32 = row.iter().sum::<f32>().max(f32::MIN_POSITIVE);
        values.extend(row.iter().map(|v| v / sum));
    }
    Dataset::from_flat(d, values)
}

/// Dense descriptors in `[0, 1]` with block-correlated dimensions (GIST
/// concatenates per-cell orientation energies; neighboring cells correlate).
pub fn gist_like(n: usize, d: usize, clusters: usize, seed: u64) -> Dataset {
    assert!(n > 0 && d > 0 && clusters > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    let block = 16usize.min(d).max(1);
    // Cluster centers drawn from a narrow band with noise comparable to the
    // center spread: clusters overlap per dimension and are separable only in
    // aggregate, as with real GIST descriptors — coarse per-dimension codes
    // are then genuinely uninformative.
    let centers: Vec<Vec<f32>> = (0..clusters)
        .map(|_| (0..d).map(|_| rng.gen_range(0.35..0.65)).collect())
        .collect();
    let mut values = Vec::with_capacity(n * d);
    for i in 0..n {
        let c = &centers[i % clusters];
        let mut j = 0;
        while j < d {
            // One shared perturbation per block plus per-dim noise.
            let shared = 0.12 * gaussian(&mut rng) as f32;
            let end = (j + block).min(d);
            for cj in &c[j..end] {
                let v = cj + shared + 0.06 * gaussian(&mut rng) as f32;
                values.push(v.clamp(0.0, 1.0));
            }
            j = end;
        }
    }
    Dataset::from_flat(d, values)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixture_has_requested_shape() {
        let ds = gaussian_mixture(100, 12, 4, 10.0, 0.3, 1);
        assert_eq!(ds.len(), 100);
        assert_eq!(ds.dim(), 12);
    }

    #[test]
    fn mixture_is_deterministic_per_seed() {
        let a = gaussian_mixture(50, 6, 3, 5.0, 0.2, 7);
        let b = gaussian_mixture(50, 6, 3, 5.0, 0.2, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn mixture_clusters_are_tight() {
        let ds = gaussian_mixture(200, 8, 2, 100.0, 0.1, 2);
        // Same-cluster points (stride `clusters`) are far closer than
        // cross-cluster points on average.
        let same = hc_core::distance::euclidean(
            ds.point(hc_core::dataset::PointId(0)),
            ds.point(hc_core::dataset::PointId(2)),
        );
        let cross = hc_core::distance::euclidean(
            ds.point(hc_core::dataset::PointId(0)),
            ds.point(hc_core::dataset::PointId(1)),
        );
        assert!(same * 5.0 < cross, "same {same} cross {cross}");
    }

    #[test]
    fn color_histograms_are_normalized_and_sparse() {
        let ds = color_histogram_like(60, 150, 5, 3);
        for (_, p) in ds.iter() {
            let sum: f32 = p.iter().sum();
            assert!((sum - 1.0).abs() < 1e-3, "L1 norm {sum}");
            assert!(p.iter().all(|&v| v >= 0.0));
            let near_zero = p.iter().filter(|&&v| v < 1e-4).count();
            assert!(near_zero > 100, "expected sparsity, got {near_zero} zeros");
        }
    }

    #[test]
    fn gist_values_are_bounded_and_dense() {
        let ds = gist_like(40, 96, 4, 4);
        for (_, p) in ds.iter() {
            assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
            let nonzero = p.iter().filter(|&&v| v > 0.01).count();
            assert!(nonzero > 80, "GIST-like should be dense");
        }
    }

    #[test]
    fn gist_blocks_are_correlated() {
        let ds = gist_like(500, 32, 1, 5);
        // Dims 0 and 1 share a block; dims 0 and 31 do not. Compute sample
        // correlation of deviations from the (single) cluster center.
        let col = |j: usize| -> Vec<f64> { ds.iter().map(|(_, p)| p[j] as f64).collect() };
        let corr = |a: &[f64], b: &[f64]| -> f64 {
            let n = a.len() as f64;
            let (ma, mb) = (a.iter().sum::<f64>() / n, b.iter().sum::<f64>() / n);
            let cov: f64 = a
                .iter()
                .zip(b)
                .map(|(x, y)| (x - ma) * (y - mb))
                .sum::<f64>()
                / n;
            let va: f64 = a.iter().map(|x| (x - ma) * (x - ma)).sum::<f64>() / n;
            let vb: f64 = b.iter().map(|y| (y - mb) * (y - mb)).sum::<f64>() / n;
            cov / (va.sqrt() * vb.sqrt())
        };
        let c0 = col(0);
        let within = corr(&c0, &col(1));
        let across = corr(&c0, &col(31));
        assert!(within > across + 0.2, "within {within} across {across}");
    }
}
