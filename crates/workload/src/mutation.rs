//! Deterministic mixed mutation streams for live-ingest experiments.
//!
//! The ingest path (DESIGN.md §13) is exercised by workloads the frozen
//! query logs cannot express: interleaved inserts, upserts, and deletes
//! whose correctness oracle is the *live set at the moment of the query*.
//! [`MutationStream`] generates that traffic reproducibly: a seeded
//! weighted choice among fresh inserts, upserts of live ids, and deletes
//! of live ids, with clustered Gaussian vectors (the [`crate::synth`]
//! shape) so segment sidecars have realistic per-dimension structure to
//! prune against.
//!
//! The stream maintains its own shadow copy of the expected live set —
//! [`MutationStream::live`] — which doubles as the brute-force reference
//! for exactness checks: after applying every emitted op to an engine, the
//! engine's live set must equal the shadow exactly, and any query's true
//! top-k is computable from it.

use std::collections::HashMap;

use hc_core::dataset::PointId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One mutation against the live-mutable dataset. Inserts are upserts:
/// re-inserting a live id replaces its vector.
#[derive(Debug, Clone, PartialEq)]
pub enum MutationOp {
    Insert { id: PointId, vector: Vec<f32> },
    Delete { id: PointId },
}

impl MutationOp {
    /// The id this op targets.
    pub fn id(&self) -> PointId {
        match self {
            MutationOp::Insert { id, .. } | MutationOp::Delete { id } => *id,
        }
    }
}

/// Relative weights of the three op kinds. Draws degrade gracefully: a
/// delete or upsert drawn while nothing is live becomes a fresh insert,
/// and a fresh insert drawn with the id space exhausted becomes an upsert.
#[derive(Debug, Clone, Copy)]
pub struct MutationMix {
    pub fresh_inserts: u32,
    pub upserts: u32,
    pub deletes: u32,
}

impl Default for MutationMix {
    /// Insert-heavy with a steady trickle of overwrites and deletes — the
    /// growth regime the seal/compaction ladder is designed for.
    fn default() -> Self {
        Self {
            fresh_inserts: 6,
            upserts: 2,
            deletes: 2,
        }
    }
}

/// Seedable generator of mixed mutation traffic with a built-in shadow of
/// the expected live set.
#[derive(Debug, Clone)]
pub struct MutationStream {
    rng: StdRng,
    dim: usize,
    id_space: u32,
    mix: MutationMix,
    centers: Vec<Vec<f32>>,
    sigma: f32,
    /// Expected live set after every op emitted so far: the exactness
    /// oracle. `ids` mirrors its key set for O(1) random victim choice.
    shadow: HashMap<u32, Vec<f32>>,
    ids: Vec<u32>,
    next_fresh: u32,
}

impl MutationStream {
    /// A stream over ids `0..id_space` of `dim`-dimensional vectors drawn
    /// from an 8-cluster Gaussian mixture seeded by `seed`.
    ///
    /// # Panics
    /// Panics if `dim == 0`, `id_space == 0`, or every mix weight is zero.
    pub fn new(dim: usize, id_space: u32, mix: MutationMix, seed: u64) -> Self {
        assert!(dim > 0, "need at least one dimension");
        assert!(id_space > 0, "need a non-empty id space");
        assert!(
            mix.fresh_inserts + mix.upserts + mix.deletes > 0,
            "mix must have positive total weight"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let clusters = 8.min(id_space as usize);
        let centers = (0..clusters)
            .map(|_| (0..dim).map(|_| rng.gen_range(0.0..100.0f32)).collect())
            .collect();
        Self {
            rng,
            dim,
            id_space,
            mix,
            centers,
            sigma: 4.0,
            shadow: HashMap::new(),
            ids: Vec::new(),
            next_fresh: 0,
        }
    }

    /// The expected live set after every op emitted so far — the
    /// brute-force exactness reference.
    pub fn live(&self) -> &HashMap<u32, Vec<f32>> {
        &self.shadow
    }

    /// Live ids right now.
    pub fn live_len(&self) -> usize {
        self.ids.len()
    }

    /// The next op, already applied to the internal shadow.
    pub fn next_op(&mut self) -> MutationOp {
        let total = self.mix.fresh_inserts + self.mix.upserts + self.mix.deletes;
        let roll = self.rng.gen_range(0..total);
        let fresh_available = self.next_fresh < self.id_space;
        let have_live = !self.ids.is_empty();
        if roll < self.mix.fresh_inserts {
            if fresh_available {
                self.fresh_insert()
            } else if have_live {
                self.upsert()
            } else {
                self.recycle_insert()
            }
        } else if roll < self.mix.fresh_inserts + self.mix.upserts {
            if have_live {
                self.upsert()
            } else if fresh_available {
                self.fresh_insert()
            } else {
                self.recycle_insert()
            }
        } else if have_live {
            self.delete()
        } else if fresh_available {
            self.fresh_insert()
        } else {
            self.recycle_insert()
        }
    }

    /// A query vector near a (random) live point, falling back to a random
    /// cluster draw while nothing is live — the hot-read companion to the
    /// mutation stream.
    pub fn query(&mut self) -> Vec<f32> {
        match self.ids.as_slice() {
            [] => {
                let c = self.rng.gen_range(0..self.centers.len());
                self.vector_near(c)
            }
            ids => {
                let anchor = ids[self.rng.gen_range(0..ids.len())];
                let mut v = self.shadow[&anchor].clone();
                for x in v.iter_mut() {
                    *x += self.rng.gen_range(-0.5..0.5f32);
                }
                v
            }
        }
    }

    /// Exact top-k over the shadow live set: ascending Euclidean distance,
    /// ties by id — the same total order the ingest engine uses.
    pub fn reference_top_k(&self, q: &[f32], k: usize) -> Vec<PointId> {
        let mut scored: Vec<(f64, u32)> = self
            .shadow
            .iter()
            .map(|(&id, v)| {
                let d = q
                    .iter()
                    .zip(v.iter())
                    .map(|(a, b)| {
                        let diff = *a as f64 - *b as f64;
                        diff * diff
                    })
                    .sum::<f64>()
                    .sqrt();
                (d, id)
            })
            .collect();
        scored.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        scored.truncate(k);
        scored.into_iter().map(|(_, id)| PointId(id)).collect()
    }

    fn vector_near(&mut self, cluster: usize) -> Vec<f32> {
        let sigma = self.sigma;
        (0..self.dim)
            .map(|d| self.centers[cluster][d] + self.rng.gen_range(-sigma..sigma))
            .collect()
    }

    fn fresh_insert(&mut self) -> MutationOp {
        let id = self.next_fresh;
        self.next_fresh += 1;
        let vector = self.vector_near(id as usize % self.centers.len());
        self.shadow.insert(id, vector.clone());
        self.ids.push(id);
        MutationOp::Insert {
            id: PointId(id),
            vector,
        }
    }

    fn upsert(&mut self) -> MutationOp {
        let id = self.ids[self.rng.gen_range(0..self.ids.len())];
        let vector = self.vector_near(id as usize % self.centers.len());
        self.shadow.insert(id, vector.clone());
        MutationOp::Insert {
            id: PointId(id),
            vector,
        }
    }

    /// Re-insert a previously used (now dead) id: the id space is
    /// exhausted and nothing is live, so any draw is a valid insert.
    fn recycle_insert(&mut self) -> MutationOp {
        debug_assert!(self.ids.is_empty() && self.next_fresh >= self.id_space);
        let id = self.rng.gen_range(0..self.id_space);
        let vector = self.vector_near(id as usize % self.centers.len());
        self.shadow.insert(id, vector.clone());
        self.ids.push(id);
        MutationOp::Insert {
            id: PointId(id),
            vector,
        }
    }

    fn delete(&mut self) -> MutationOp {
        let slot = self.rng.gen_range(0..self.ids.len());
        let id = self.ids.swap_remove(slot);
        self.shadow.remove(&id);
        MutationOp::Delete { id: PointId(id) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = MutationStream::new(8, 100, MutationMix::default(), 42);
        let mut b = MutationStream::new(8, 100, MutationMix::default(), 42);
        for _ in 0..500 {
            assert_eq!(a.next_op(), b.next_op());
        }
        assert_eq!(a.live(), b.live());
    }

    #[test]
    fn shadow_tracks_the_emitted_ops() {
        let mut stream = MutationStream::new(4, 50, MutationMix::default(), 7);
        let mut replay: HashMap<u32, Vec<f32>> = HashMap::new();
        for _ in 0..1000 {
            match stream.next_op() {
                MutationOp::Insert { id, vector } => {
                    replay.insert(id.0, vector);
                }
                MutationOp::Delete { id } => {
                    assert!(
                        replay.remove(&id.0).is_some(),
                        "stream must never delete a dead id"
                    );
                }
            }
        }
        assert_eq!(&replay, stream.live());
        assert_eq!(replay.len(), stream.live_len());
    }

    #[test]
    fn exhausted_id_space_degrades_to_upserts() {
        let mix = MutationMix {
            fresh_inserts: 1,
            upserts: 0,
            deletes: 0,
        };
        let mut stream = MutationStream::new(2, 5, mix, 3);
        for _ in 0..100 {
            let op = stream.next_op();
            assert!(matches!(op, MutationOp::Insert { id, .. } if id.0 < 5));
        }
        assert_eq!(stream.live_len(), 5, "all five ids live, none fabricated");
    }

    #[test]
    fn reference_top_k_orders_by_distance_then_id() {
        let mut stream = MutationStream::new(2, 10, MutationMix::default(), 1);
        for _ in 0..20 {
            stream.next_op();
        }
        let q = stream.query();
        let top = stream.reference_top_k(&q, 3);
        assert!(top.len() <= 3);
        let all = stream.reference_top_k(&q, stream.live_len());
        assert_eq!(&all[..top.len()], &top[..], "prefix property");
    }
}
