//! Zipf-distributed sampling for temporally-local query logs.
//!
//! The paper motivates caching with the power-law popularity of multimedia
//! objects (Fig. 2, Flickr photo views). A [`Zipf`] sampler over ranks
//! `1..=n` with exponent `s` draws rank `r` with probability `∝ 1/r^s`;
//! applied to a pool of query points it produces a log in which a small
//! fraction of queries receives most of the repetitions — exactly the
//! temporal locality HFF and LRU exploit.

use rand::Rng;

/// Zipf sampler over `1..=n` using inverse-CDF lookup on precomputed
/// cumulative weights (exact, O(log n) per draw).
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Create a sampler over `n` ranks with exponent `s ≥ 0` (`s = 0` is
    /// uniform; `s ≈ 0.8–1.0` matches typical web query logs \[25\]).
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n >= 1, "need at least one rank");
        assert!(s >= 0.0 && s.is_finite(), "exponent must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for r in 1..=n {
            acc += 1.0 / (r as f64).powf(s);
            cdf.push(acc);
        }
        Self { cdf }
    }

    /// Number of ranks.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// Draw a 0-based rank (0 is the most popular).
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let total = *self.cdf.last().expect("non-empty");
        let t = rng.gen_range(0.0..total);
        self.cdf.partition_point(|&c| c <= t)
    }

    /// Probability mass of rank `r` (0-based).
    pub fn pmf(&self, r: usize) -> f64 {
        let total = *self.cdf.last().expect("non-empty");
        let lo = if r == 0 { 0.0 } else { self.cdf[r - 1] };
        (self.cdf[r] - lo) / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(100, 0.8);
        let total: f64 = (0..100).map(|r| z.pmf(r)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn lower_ranks_are_more_popular() {
        let z = Zipf::new(50, 1.0);
        for r in 1..50 {
            assert!(z.pmf(r - 1) > z.pmf(r));
        }
    }

    #[test]
    fn zero_exponent_is_uniform() {
        let z = Zipf::new(10, 0.0);
        for r in 0..10 {
            assert!((z.pmf(r) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn samples_follow_the_skew() {
        let z = Zipf::new(100, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = vec![0usize; 100];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10] && counts[10] > counts[50]);
        // Head concentration: top-10 ranks take a large share under s=1.
        let head: usize = counts[..10].iter().sum();
        assert!(head > 5_000, "head share {head}");
    }

    #[test]
    fn samples_stay_in_range() {
        let z = Zipf::new(3, 2.0);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 3);
        }
    }
}
