//! Drifting-hotspot query streams for cache-lifecycle experiments.
//!
//! The paper's §3.5 deployment model rebuilds the scheme and cache
//! periodically because workloads *drift*: the popular queries of last week
//! are not the popular queries of today. [`DriftingHotspot`] makes that
//! drift reproducible: draws are Zipf-distributed over the query pool, but
//! the identity of the hot head rotates every `rotate_every` draws — rank
//! `r` maps to pool index `(offset + r) mod pool_size`, and the offset
//! advances by `stride` at each rotation.
//!
//! Within one epoch the marginal distribution is exactly [`Zipf`] over the
//! rotated indices, so an HFF cache built for epoch `e` has near-zero
//! overlap with epoch `e+1`'s hot set once `stride` exceeds the head width:
//! the hit ratio collapses until the maintenance daemon rebuilds. That is
//! the story the `drift` bench bin measures.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::zipf::Zipf;

/// Seedable Zipf sampler whose hot set rotates every `rotate_every` draws.
#[derive(Debug, Clone)]
pub struct DriftingHotspot {
    zipf: Zipf,
    pool_size: usize,
    rotate_every: usize,
    stride: usize,
    offset: usize,
    drawn: usize,
    rng: StdRng,
}

impl DriftingHotspot {
    /// Sampler over pool indices `0..pool_size` with Zipf exponent `s`.
    /// Every `rotate_every` draws the hot set shifts by `stride` indices.
    ///
    /// # Panics
    /// Panics if `pool_size == 0` or `rotate_every == 0`.
    pub fn new(pool_size: usize, s: f64, rotate_every: usize, stride: usize, seed: u64) -> Self {
        assert!(pool_size >= 1, "need a non-empty pool");
        assert!(rotate_every >= 1, "rotation period must be positive");
        Self {
            zipf: Zipf::new(pool_size, s),
            pool_size,
            rotate_every,
            stride,
            offset: 0,
            drawn: 0,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// How many full rotations have happened so far.
    pub fn epoch(&self) -> usize {
        self.drawn / self.rotate_every
    }

    /// Current rotation offset: pool index holding Zipf rank 0.
    pub fn offset(&self) -> usize {
        self.offset
    }

    /// Draw the next pool index.
    pub fn next_index(&mut self) -> usize {
        let rank = self.zipf.sample(&mut self.rng);
        let index = (self.offset + rank) % self.pool_size;
        self.drawn += 1;
        if self.drawn.is_multiple_of(self.rotate_every) {
            self.offset = (self.offset + self.stride) % self.pool_size;
        }
        index
    }

    /// Draw `n` pool indices.
    pub fn take_indices(&mut self, n: usize) -> Vec<usize> {
        (0..n).map(|_| self.next_index()).collect()
    }

    /// Draw `n` queries by cloning pool vectors.
    pub fn take_queries(&mut self, pool: &[Vec<f32>], n: usize) -> Vec<Vec<f32>> {
        assert_eq!(pool.len(), self.pool_size, "pool size mismatch");
        self.take_indices(n)
            .into_iter()
            .map(|i| pool[i].clone())
            .collect()
    }

    /// Probability of drawing `index` under the *current* epoch's rotation.
    pub fn pmf_at(&self, index: usize) -> f64 {
        assert!(index < self.pool_size);
        let rank = (index + self.pool_size - self.offset) % self.pool_size;
        self.zipf.pmf(rank)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn current_epoch_marginal_matches_the_rotated_zipf() {
        // No rotation within the sample: the marginal is exactly Zipf
        // shifted by the initial offset (0).
        let mut d = DriftingHotspot::new(64, 1.0, usize::MAX - 1, 16, 42);
        let n = 40_000;
        let mut counts = vec![0usize; 64];
        for _ in 0..n {
            counts[d.next_index()] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let expect = d.pmf_at(i) * n as f64;
            // 5-sigma-ish binomial tolerance plus slack for tiny tails.
            let tol = 5.0 * expect.sqrt() + 8.0;
            assert!(
                (c as f64 - expect).abs() < tol,
                "index {i}: observed {c}, expected {expect:.1}"
            );
        }
    }

    #[test]
    fn pmf_sums_to_one_in_every_epoch() {
        let mut d = DriftingHotspot::new(50, 0.8, 10, 7, 1);
        for _ in 0..5 {
            let total: f64 = (0..50).map(|i| d.pmf_at(i)).sum();
            assert!((total - 1.0).abs() < 1e-9);
            d.take_indices(10); // advance one epoch
        }
    }

    #[test]
    fn hot_head_rotates_by_stride_each_epoch() {
        let mut d = DriftingHotspot::new(100, 1.2, 1000, 25, 7);
        for epoch in 0..4 {
            assert_eq!(d.epoch(), epoch);
            assert_eq!(d.offset(), (epoch * 25) % 100);
            let indices = d.take_indices(1000);
            let mut counts = vec![0usize; 100];
            for i in indices {
                counts[i] += 1;
            }
            let hottest = (0..100).max_by_key(|&i| counts[i]).unwrap();
            assert_eq!(
                hottest,
                (epoch * 25) % 100,
                "epoch {epoch}: hot head must sit at the rotated offset"
            );
        }
    }

    #[test]
    fn successive_epochs_have_disjoint_heads() {
        // With stride ≥ head width, the top-10 sets of consecutive epochs
        // must not overlap — that is what collapses the hit ratio.
        let mut d = DriftingHotspot::new(200, 1.0, 2000, 50, 3);
        let head = |counts: &[usize]| -> Vec<usize> {
            let mut order: Vec<usize> = (0..counts.len()).collect();
            order.sort_by_key(|&i| std::cmp::Reverse(counts[i]));
            order[..10].to_vec()
        };
        let mut counts_a = vec![0usize; 200];
        for i in d.take_indices(2000) {
            counts_a[i] += 1;
        }
        let mut counts_b = vec![0usize; 200];
        for i in d.take_indices(2000) {
            counts_b[i] += 1;
        }
        let head_a = head(&counts_a);
        let head_b = head(&counts_b);
        assert!(
            head_a.iter().all(|i| !head_b.contains(i)),
            "heads must be disjoint: {head_a:?} vs {head_b:?}"
        );
    }

    #[test]
    fn same_seed_replays_identically_and_seeds_differ() {
        let seq = |seed: u64| DriftingHotspot::new(64, 0.9, 16, 8, seed).take_indices(200);
        assert_eq!(seq(5), seq(5));
        assert_ne!(seq(5), seq(6));
    }

    #[test]
    fn offset_wraps_around_the_pool() {
        let mut d = DriftingHotspot::new(10, 1.0, 1, 7, 0);
        // 10 rotations of stride 7 over a pool of 10: offset cycles.
        let mut seen = std::collections::HashSet::new();
        for _ in 0..10 {
            seen.insert(d.offset());
            d.next_index();
        }
        assert_eq!(seen.len(), 10, "stride 7 mod 10 visits every offset");
        assert!(d.take_indices(100).iter().all(|&i| i < 10));
    }

    #[test]
    fn take_queries_clones_pool_rows() {
        let pool: Vec<Vec<f32>> = (0..8).map(|i| vec![i as f32, 2.0 * i as f32]).collect();
        let mut d = DriftingHotspot::new(8, 1.0, 4, 2, 9);
        let qs = d.take_queries(&pool, 20);
        assert_eq!(qs.len(), 20);
        assert!(qs.iter().all(|q| pool.contains(q)));
    }
}
