//! Query-log generation and the workload / test split (paper §5.1).
//!
//! For NUS-WIDE and IMGNET the paper has no real log: it picks random points
//! from `P` as queries and *removes them from `P`* (following \[13\], \[29\]).
//! For SOGOU it uses a real image-search log, whose defining property is the
//! power-law repetition of popular queries (Fig. 2). [`QueryLog`] reproduces
//! both protocols: a pool of query points is carved out of the dataset and a
//! log is drawn over the pool — Zipf-weighted (temporal locality) or uniform
//! — then split into the historical workload `WL` (used to build caches and
//! histograms) and the held-out test set `Q_test` (used to measure).

use hc_core::dataset::Dataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::zipf::Zipf;

/// How repetitions are distributed over the query pool.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Popularity {
    /// Every pool entry equally likely.
    Uniform,
    /// Zipf with the given exponent (≈0.8 matches web logs \[25\]).
    Zipf(f64),
}

/// Configuration of a generated query log.
#[derive(Debug, Clone)]
pub struct QueryLogConfig {
    /// Number of distinct query points carved out of the dataset.
    pub pool_size: usize,
    /// Length of the historical workload `WL`.
    pub workload_len: usize,
    /// Number of held-out test queries (the paper fixes 50).
    pub test_len: usize,
    pub popularity: Popularity,
    pub seed: u64,
}

impl Default for QueryLogConfig {
    fn default() -> Self {
        Self {
            pool_size: 200,
            workload_len: 1000,
            test_len: 50,
            popularity: Popularity::Zipf(0.8),
            seed: 0xC0FFEE,
        }
    }
}

/// A dataset with its query pool removed, plus the drawn log.
#[derive(Debug, Clone)]
pub struct QueryLog {
    /// The dataset **after removing** the query-pool points (the paper's
    /// protocol keeps queries out of `P`).
    pub dataset: Dataset,
    /// Distinct query points.
    pub pool: Vec<Vec<f32>>,
    /// Historical workload `WL` (indices resolve into `pool`).
    pub workload: Vec<Vec<f32>>,
    /// Held-out test queries `Q_test`.
    pub test: Vec<Vec<f32>>,
}

impl QueryLog {
    /// Carve a query pool out of `dataset` and draw the log.
    ///
    /// # Panics
    /// Panics if the pool would consume the whole dataset.
    pub fn generate(dataset: &Dataset, config: &QueryLogConfig) -> Self {
        let n = dataset.len();
        assert!(config.pool_size >= 1);
        assert!(config.pool_size < n, "query pool must leave data behind");
        let mut rng = StdRng::seed_from_u64(config.seed);

        // Choose pool ids by reservoir-free partial shuffle.
        let mut ids: Vec<u32> = (0..n as u32).collect();
        for i in 0..config.pool_size {
            let j = rng.gen_range(i..n);
            ids.swap(i, j);
        }
        let mut pool_ids: Vec<u32> = ids[..config.pool_size].to_vec();
        pool_ids.sort_unstable();
        let pool: Vec<Vec<f32>> = pool_ids
            .iter()
            .map(|&id| dataset.point(hc_core::dataset::PointId(id)).to_vec())
            .collect();

        // Remaining points become the searchable dataset.
        let mut remaining = Dataset::with_dim(dataset.dim());
        let mut next_pool = 0usize;
        for (id, p) in dataset.iter() {
            if next_pool < pool_ids.len() && pool_ids[next_pool] == id.0 {
                next_pool += 1;
                continue;
            }
            remaining.push(p);
        }

        // Draw the log over the pool.
        let draw: Box<dyn FnMut(&mut StdRng) -> usize> = match config.popularity {
            Popularity::Uniform => {
                Box::new(move |rng: &mut StdRng| rng.gen_range(0..config.pool_size))
            }
            Popularity::Zipf(s) => {
                let z = Zipf::new(config.pool_size, s);
                Box::new(move |rng: &mut StdRng| z.sample(rng))
            }
        };
        let mut draw = draw;
        let workload: Vec<Vec<f32>> = (0..config.workload_len)
            .map(|_| pool[draw(&mut rng)].clone())
            .collect();
        let test: Vec<Vec<f32>> = (0..config.test_len)
            .map(|_| pool[draw(&mut rng)].clone())
            .collect();

        Self {
            dataset: remaining,
            pool,
            workload,
            test,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::gaussian_mixture;

    fn base() -> Dataset {
        gaussian_mixture(500, 8, 5, 10.0, 0.5, 11)
    }

    #[test]
    fn pool_points_are_removed_from_dataset() {
        let ds = base();
        let log = QueryLog::generate(
            &ds,
            &QueryLogConfig {
                pool_size: 50,
                workload_len: 100,
                test_len: 10,
                ..Default::default()
            },
        );
        assert_eq!(log.dataset.len(), 450);
        assert_eq!(log.pool.len(), 50);
        // No pool point should remain in the dataset.
        for q in &log.pool {
            assert!(
                !log.dataset.iter().any(|(_, p)| p == q.as_slice()),
                "pool point left in dataset"
            );
        }
    }

    #[test]
    fn log_lengths_match_config() {
        let log = QueryLog::generate(
            &base(),
            &QueryLogConfig {
                pool_size: 20,
                workload_len: 77,
                test_len: 5,
                ..Default::default()
            },
        );
        assert_eq!(log.workload.len(), 77);
        assert_eq!(log.test.len(), 5);
        // Every logged query comes from the pool.
        for q in log.workload.iter().chain(&log.test) {
            assert!(log.pool.iter().any(|p| p == q));
        }
    }

    #[test]
    fn zipf_log_repeats_head_queries() {
        let log = QueryLog::generate(
            &base(),
            &QueryLogConfig {
                pool_size: 100,
                workload_len: 2000,
                test_len: 50,
                popularity: Popularity::Zipf(1.0),
                seed: 3,
            },
        );
        // Count occurrences of the most frequent workload query.
        use std::collections::HashMap;
        let key = |q: &[f32]| -> Vec<u32> { q.iter().map(|v| v.to_bits()).collect() };
        let mut counts: HashMap<Vec<u32>, usize> = HashMap::new();
        for q in &log.workload {
            *counts.entry(key(q)).or_insert(0) += 1;
        }
        let max = counts.values().copied().max().expect("non-empty");
        assert!(max > 2000 / 100 * 3, "no temporal locality: max {max}");
        // Test queries overlap the workload's support (cache can help).
        let overlap = log
            .test
            .iter()
            .filter(|q| counts.contains_key(&key(q)))
            .count();
        assert!(overlap > 25, "test/workload overlap only {overlap}/50");
    }

    #[test]
    fn uniform_log_is_flat() {
        let log = QueryLog::generate(
            &base(),
            &QueryLogConfig {
                pool_size: 10,
                workload_len: 5000,
                test_len: 10,
                popularity: Popularity::Uniform,
                seed: 4,
            },
        );
        use std::collections::HashMap;
        let key = |q: &[f32]| -> Vec<u32> { q.iter().map(|v| v.to_bits()).collect() };
        let mut counts: HashMap<Vec<u32>, usize> = HashMap::new();
        for q in &log.workload {
            *counts.entry(key(q)).or_insert(0) += 1;
        }
        for &c in counts.values() {
            assert!((300..=700).contains(&c), "uniform draw skewed: {c}");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let ds = base();
        let cfg = QueryLogConfig::default();
        let a = QueryLog::generate(&ds, &cfg);
        let b = QueryLog::generate(&ds, &cfg);
        assert_eq!(a.workload, b.workload);
        assert_eq!(a.test, b.test);
    }

    #[test]
    #[should_panic(expected = "leave data behind")]
    fn rejects_pool_consuming_dataset() {
        let ds = gaussian_mixture(10, 2, 1, 1.0, 0.1, 1);
        let _ = QueryLog::generate(
            &ds,
            &QueryLogConfig {
                pool_size: 10,
                ..Default::default()
            },
        );
    }
}
