//! # hc-workload
//!
//! Synthetic datasets and query logs standing in for the paper's evaluation
//! data (NUS-WIDE, IMGNET, SOGOU and its image-search log) — see DESIGN.md §4
//! for the substitution argument.
//!
//! * [`synth`] — clustered feature generators (Gaussian mixtures,
//!   color-histogram-like, GIST-like),
//! * [`zipf`] — power-law popularity sampling (paper Fig. 2),
//! * [`querylog`] — the `P` / `WL` / `Q_test` split protocol of §5.1,
//! * [`presets`] — the three paper datasets at laptop scale with matching
//!   dimensionalities and page geometry,
//! * [`drift`] — Zipf streams whose hot set rotates every N draws, for the
//!   cache-lifecycle (§3.5 periodic rebuild) experiments,
//! * [`mutation`] — deterministic insert/upsert/delete streams with a
//!   built-in live-set shadow, the exactness oracle for the ingest path
//!   (DESIGN.md §13).

pub mod drift;
pub mod mutation;
pub mod presets;
pub mod querylog;
pub mod synth;
pub mod zipf;

pub use drift::DriftingHotspot;
pub use mutation::{MutationMix, MutationOp, MutationStream};
pub use presets::{Preset, Scale};
pub use querylog::{Popularity, QueryLog, QueryLogConfig};
