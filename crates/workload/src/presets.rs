//! The three evaluation datasets (paper Table 2), reproduced synthetically
//! at laptop scale.
//!
//! | Paper     | d   | |P|       | per point | Here (default scale)        |
//! |-----------|-----|-----------|-----------|-----------------------------|
//! | NUS-WIDE  | 150 | 267,415   | 600 B     | 150-d color-histogram-like  |
//! | IMGNET    | 150 | 2,213,937 | 600 B     | 150-d color-histogram-like  |
//! | SOGOU     | 960 | 8,304,965 | 3,840 B   | 960-d GIST-like, real log → Zipf log |
//!
//! Dimensionality and per-point byte sizes match the paper exactly (so page
//! geometry — points per 4 KB page — is identical); cardinalities are scaled
//! by [`Scale`] so the full experiment suite runs in minutes. The default
//! cache sizes follow the paper's "< 30 % of the dataset file" rule.

use hc_core::dataset::Dataset;

use crate::querylog::{Popularity, QueryLog, QueryLogConfig};
use crate::synth::{color_histogram_like, gist_like};

/// Experiment scale: multiplies dataset cardinalities and workload lengths.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Scale {
    /// Tiny — unit/integration tests (seconds).
    Test,
    /// Bench — criterion benchmarks (tens of seconds for the full suite).
    Bench,
    /// Full — the experiment harness regenerating every table/figure.
    Full,
}

impl Scale {
    fn factor(self) -> f64 {
        match self {
            Scale::Test => 0.1,
            Scale::Bench => 0.3,
            Scale::Full => 1.0,
        }
    }
}

/// A fully-specified dataset preset.
#[derive(Debug, Clone)]
pub struct Preset {
    /// Paper dataset this stands in for.
    pub name: &'static str,
    pub dim: usize,
    pub n_points: usize,
    pub clusters: usize,
    pub query_pool: usize,
    pub workload_len: usize,
    pub test_len: usize,
    pub popularity: Popularity,
    pub seed: u64,
}

impl Preset {
    /// NUS-WIDE-like: 150-d sparse color histograms.
    pub fn nus_wide(scale: Scale) -> Self {
        let f = scale.factor();
        Self {
            name: "NUS-WIDE",
            dim: 150,
            n_points: (20_000.0 * f) as usize,
            clusters: 40,
            query_pool: (400.0 * f) as usize,
            workload_len: (2_000.0 * f) as usize,
            test_len: 50,
            popularity: Popularity::Zipf(0.8),
            seed: 0x9151,
        }
    }

    /// IMGNET-like: 150-d color histograms, larger cardinality.
    pub fn imgnet(scale: Scale) -> Self {
        let f = scale.factor();
        Self {
            name: "IMGNET",
            dim: 150,
            n_points: (40_000.0 * f) as usize,
            clusters: 80,
            query_pool: (600.0 * f) as usize,
            workload_len: (2_500.0 * f) as usize,
            test_len: 50,
            popularity: Popularity::Zipf(0.8),
            seed: 0x1337,
        }
    }

    /// SOGOU-like: 960-d GIST descriptors with a skewed (real-log-like)
    /// query distribution.
    pub fn sogou(scale: Scale) -> Self {
        let f = scale.factor();
        Self {
            name: "SOGOU",
            dim: 960,
            n_points: (6_000.0 * f) as usize,
            clusters: 30,
            query_pool: (300.0 * f) as usize,
            workload_len: (1_500.0 * f) as usize,
            test_len: 50,
            popularity: Popularity::Zipf(0.9),
            seed: 0x5060,
        }
    }

    /// All three presets, in the paper's order.
    pub fn all(scale: Scale) -> Vec<Preset> {
        vec![
            Self::nus_wide(scale),
            Self::imgnet(scale),
            Self::sogou(scale),
        ]
    }

    /// Generate the raw dataset (before query-pool removal).
    pub fn dataset(&self) -> Dataset {
        match self.name {
            "SOGOU" => gist_like(self.n_points, self.dim, self.clusters, self.seed),
            _ => color_histogram_like(self.n_points, self.dim, self.clusters, self.seed),
        }
    }

    /// Generate dataset + query log split (the paper's `P`, `WL`, `Q_test`).
    pub fn instantiate(&self) -> QueryLog {
        let ds = self.dataset();
        QueryLog::generate(
            &ds,
            &QueryLogConfig {
                pool_size: self.query_pool.max(2).min(ds.len() - 1),
                workload_len: self.workload_len.max(1),
                test_len: self.test_len,
                popularity: self.popularity,
                seed: self.seed ^ 0xAB,
            },
        )
    }

    /// The paper's default cache size: 30 % of the dataset file.
    pub fn default_cache_bytes(&self) -> usize {
        let file = self.n_points * self.dim * 4;
        file * 3 / 10
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_geometry_matches_paper() {
        let nus = Preset::nus_wide(Scale::Test);
        assert_eq!(nus.dim * 4, 600); // 600 bytes per point
        let sog = Preset::sogou(Scale::Test);
        assert_eq!(sog.dim * 4, 3840); // 3840 bytes per point
    }

    #[test]
    fn presets_instantiate_consistently() {
        for preset in Preset::all(Scale::Test) {
            let log = preset.instantiate();
            assert_eq!(log.dataset.dim(), preset.dim);
            assert_eq!(log.test.len(), preset.test_len);
            assert!(log.dataset.len() + log.pool.len() == preset.n_points);
            assert!(preset.default_cache_bytes() < preset.n_points * preset.dim * 4 / 3);
        }
    }

    #[test]
    fn scales_order_cardinalities() {
        let t = Preset::imgnet(Scale::Test).n_points;
        let b = Preset::imgnet(Scale::Bench).n_points;
        let f = Preset::imgnet(Scale::Full).n_points;
        assert!(t < b && b < f);
    }
}
