//! iDistance: exact kNN index via reference-point distance keys
//! (Jagadish, Ooi, Tan, Yu, Zhang; TODS 2005 — the paper's reference \[20\]).
//!
//! Each point is assigned to its nearest reference point (k-means center)
//! and keyed by `key(p) = cluster · C + dist(p, center_cluster)` with `C`
//! larger than any cluster radius; a B+-tree over the keys makes a range of
//! keys a contiguous run of leaf pages. We keep the paper's split: non-leaf
//! information (centers, radii, per-leaf key ranges) in memory, leaf pages of
//! points on disk.
//!
//! Leaves never span clusters, so every leaf carries `(cluster, [d_lo, d_hi])`
//! — the distance-to-center interval of its members — from which the triangle
//! inequality yields the per-leaf lower bound
//! `max(0, dist(q, center) − d_hi, d_lo − dist(q, center))` used by the
//! interleaved tree search of §3.6.1.

use hc_core::dataset::{Dataset, PointId};
use hc_core::distance::euclidean;

use crate::kmeans::{kmeans, KMeans};
use crate::traits::LeafedIndex;

/// One iDistance leaf node's in-memory branch entry.
#[derive(Debug, Clone)]
struct LeafMeta {
    cluster: u32,
    /// Distance-to-center interval of members.
    d_lo: f64,
    d_hi: f64,
    /// Members, sorted by distance to the cluster center.
    points: Vec<PointId>,
}

/// The iDistance index.
pub struct IDistance {
    km: KMeans,
    leaves: Vec<LeafMeta>,
    leaf_of: Vec<u32>,
    leaf_capacity: usize,
}

impl IDistance {
    /// Build with `num_refs` k-means reference points and the given leaf
    /// capacity (typically the page capacity: `⌊4096 / point_bytes⌋`).
    pub fn build(dataset: &Dataset, num_refs: usize, leaf_capacity: usize, seed: u64) -> Self {
        assert!(leaf_capacity >= 1);
        let km = kmeans(dataset, num_refs, seed, 25);
        // Group points by cluster, sort each group by distance to center.
        let mut groups: Vec<Vec<(f64, u32)>> = vec![Vec::new(); km.k()];
        for (i, &c) in km.assignment.iter().enumerate() {
            groups[c as usize].push((km.dist_to_center[i], i as u32));
        }
        let mut leaves = Vec::new();
        let mut leaf_of = vec![0u32; dataset.len()];
        for (c, group) in groups.iter_mut().enumerate() {
            group.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite").then(a.1.cmp(&b.1)));
            for chunk in group.chunks(leaf_capacity) {
                let leaf_id = leaves.len() as u32;
                let points: Vec<PointId> = chunk.iter().map(|&(_, id)| PointId(id)).collect();
                for p in &points {
                    leaf_of[p.index()] = leaf_id;
                }
                leaves.push(LeafMeta {
                    cluster: c as u32,
                    d_lo: chunk.first().expect("non-empty chunk").0,
                    d_hi: chunk.last().expect("non-empty chunk").0,
                    points,
                });
            }
        }
        Self {
            km,
            leaves,
            leaf_of,
            leaf_capacity,
        }
    }

    /// The reference-point clustering.
    pub fn kmeans(&self) -> &KMeans {
        &self.km
    }

    /// Leaf capacity (points per disk node).
    pub fn leaf_capacity(&self) -> usize {
        self.leaf_capacity
    }

    /// A file ordering that lays leaves out consecutively (feeds
    /// `PointFile::with_order` so co-leaf points share disk pages — the
    /// Clustered ordering of §5.2.2).
    pub fn file_order(&self) -> Vec<u32> {
        self.leaves
            .iter()
            .flat_map(|l| l.points.iter().map(|p| p.0))
            .collect()
    }
}

impl LeafedIndex for IDistance {
    fn num_leaves(&self) -> u32 {
        self.leaves.len() as u32
    }

    fn leaf_points(&self, leaf: u32) -> &[PointId] {
        &self.leaves[leaf as usize].points
    }

    fn leaf_lower_bounds(&self, q: &[f32]) -> Vec<(u32, f64)> {
        // One center distance per cluster, then O(1) per leaf.
        let center_dist: Vec<f64> = (0..self.km.k() as u32)
            .map(|c| euclidean(q, self.km.center(c)))
            .collect();
        self.leaves
            .iter()
            .enumerate()
            .map(|(i, leaf)| {
                let dc = center_dist[leaf.cluster as usize];
                let lb = (dc - leaf.d_hi).max(leaf.d_lo - dc).max(0.0);
                (i as u32, lb)
            })
            .collect()
    }

    fn leaf_of(&self, id: PointId) -> u32 {
        self.leaf_of[id.index()]
    }

    fn name(&self) -> &'static str {
        "iDistance"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn dataset(n: usize, d: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        Dataset::from_rows(
            &(0..n)
                .map(|_| (0..d).map(|_| rng.gen_range(0.0..10.0)).collect())
                .collect::<Vec<_>>(),
        )
    }

    #[test]
    fn every_point_is_in_exactly_one_leaf() {
        let ds = dataset(200, 5, 1);
        let idx = IDistance::build(&ds, 8, 6, 1);
        let mut seen = vec![false; ds.len()];
        for leaf in 0..idx.num_leaves() {
            for p in idx.leaf_points(leaf) {
                assert!(!seen[p.index()], "{p} duplicated");
                seen[p.index()] = true;
                assert_eq!(idx.leaf_of(*p), leaf);
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn leaves_respect_capacity_and_clusters() {
        let ds = dataset(150, 4, 2);
        let idx = IDistance::build(&ds, 5, 7, 2);
        for leaf in 0..idx.num_leaves() {
            let pts = idx.leaf_points(leaf);
            assert!(pts.len() <= 7);
            let meta_cluster = idx.km.assignment[pts[0].index()];
            for p in pts {
                assert_eq!(idx.km.assignment[p.index()], meta_cluster);
            }
        }
    }

    #[test]
    fn leaf_lower_bounds_are_sound() {
        let ds = dataset(120, 6, 3);
        let idx = IDistance::build(&ds, 6, 5, 3);
        let q: Vec<f32> = (0..6).map(|j| j as f32).collect();
        for (leaf, lb) in idx.leaf_lower_bounds(&q) {
            for p in idx.leaf_points(leaf) {
                let d = euclidean(&q, ds.point(*p));
                assert!(lb <= d + 1e-9, "leaf {leaf}: lb {lb} > dist {d}");
            }
        }
    }

    #[test]
    fn file_order_is_a_permutation_grouping_leaves() {
        let ds = dataset(90, 3, 4);
        let idx = IDistance::build(&ds, 4, 6, 4);
        let order = idx.file_order();
        assert_eq!(order.len(), ds.len());
        let mut seen = vec![false; ds.len()];
        for &id in &order {
            assert!(!seen[id as usize]);
            seen[id as usize] = true;
        }
        // Consecutive positions within a leaf_capacity-sized window share a
        // leaf wherever the leaf is full.
        let mut pos = 0usize;
        for leaf in 0..idx.num_leaves() {
            let len = idx.leaf_points(leaf).len();
            for &id in &order[pos..pos + len] {
                assert_eq!(idx.leaf_of(PointId(id)), leaf);
            }
            pos += len;
        }
    }

    #[test]
    fn near_leaves_have_smaller_bounds_than_far_leaves() {
        let ds = dataset(100, 4, 5);
        let idx = IDistance::build(&ds, 6, 5, 5);
        let q = ds.point(PointId(0)).to_vec();
        let bounds = idx.leaf_lower_bounds(&q);
        let own_leaf = idx.leaf_of(PointId(0));
        let own_lb = bounds
            .iter()
            .find(|&&(l, _)| l == own_leaf)
            .expect("has leaf")
            .1;
        assert!(own_lb <= 1e-6, "query's own leaf must have ~zero bound");
        let max_lb = bounds.iter().map(|&(_, lb)| lb).fold(0.0f64, f64::max);
        assert!(max_lb > own_lb);
    }
}
