//! VA-file: the vector-approximation file of Weber & Blott (\[32\], \[33\]).
//!
//! The VA-file accelerates linear scan: each dimension is quantized into
//! `2^bits` cells with **equi-depth** boundaries (the encoding the paper
//! attributes to VA-file in §5.1), and a compact approximation array — a few
//! bits per dimension per point — is scanned in memory. The scan yields
//! lower/upper distance bounds per point; only points whose lower bound beats
//! the running k-th upper bound become candidates and ever touch the disk.
//!
//! In this reproduction the VA-file plays two roles:
//! * an exact [`CandidateIndex`] for the Fig. 16 experiment (phase-1 scan in
//!   memory, refinement through the shared pipeline), and
//! * the basis of the C-VA baseline (§5.2.4), which caches the *whole*
//!   approximation array with the bit budget tuned to the cache size —
//!   implemented in `hc-cache::cva` on top of this quantization.

use hc_core::bounds::BoundsAcc;
use hc_core::codes::PackedCodes;
use hc_core::dataset::{Dataset, PointId};
use hc_core::distance::DistEntry;

use crate::traits::CandidateIndex;

/// Per-dimension equi-depth cell boundaries.
///
/// Dimension `j` has `cells` cells; cell `c` covers
/// `[boundaries[j][c], boundaries[j][c+1]]` (closed on both ends at the
/// extremes so every value is covered).
#[derive(Debug, Clone)]
pub struct VaGrid {
    dim: usize,
    bits: u32,
    /// `dim` arrays of `cells + 1` ascending boundary values.
    boundaries: Vec<Vec<f32>>,
}

impl VaGrid {
    /// Build equi-depth boundaries from the data (offline).
    pub fn fit(dataset: &Dataset, bits: u32) -> Self {
        assert!((1..=16).contains(&bits), "VA-file bits per dim in [1,16]");
        let d = dataset.dim();
        let n = dataset.len();
        assert!(n > 0);
        let cells = 1usize << bits;
        let mut boundaries = Vec::with_capacity(d);
        let mut column: Vec<f32> = Vec::with_capacity(n);
        for j in 0..d {
            column.clear();
            column.extend(dataset.iter().map(|(_, p)| p[j]));
            column.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
            let mut bounds = Vec::with_capacity(cells + 1);
            bounds.push(column[0]);
            for c in 1..cells {
                let idx = (c * n) / cells;
                let v = column[idx.min(n - 1)];
                // Boundaries must be non-decreasing; duplicates collapse the
                // cell (harmless: it just never gets used).
                bounds.push(v.max(*bounds.last().expect("non-empty")));
            }
            bounds.push(column[n - 1]);
            boundaries.push(bounds);
        }
        Self {
            dim: d,
            bits,
            boundaries,
        }
    }

    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Bits per dimension.
    #[inline]
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Number of cells per dimension.
    #[inline]
    pub fn cells(&self) -> usize {
        1 << self.bits
    }

    /// Cell index of a value on dimension `j` (clamped at the extremes).
    #[inline]
    pub fn cell(&self, j: usize, v: f32) -> u32 {
        let b = &self.boundaries[j];
        // partition_point gives the count of boundaries <= v; the cell is one
        // less, clamped to the valid range.
        let idx = b.partition_point(|&x| x <= v);
        (idx.saturating_sub(1)).min(self.cells() - 1) as u32
    }

    /// The closed interval covered by cell `c` of dimension `j`.
    #[inline]
    pub fn cell_interval(&self, j: usize, c: u32) -> (f32, f32) {
        let b = &self.boundaries[j];
        (b[c as usize], b[c as usize + 1])
    }

    /// Encode every point of a dataset into a packed approximation array.
    pub fn encode_all(&self, dataset: &Dataset) -> PackedCodes {
        assert_eq!(dataset.dim(), self.dim);
        let mut codes = PackedCodes::with_capacity(self.dim, self.bits, dataset.len());
        for (_, p) in dataset.iter() {
            codes.push(ApproxIter {
                grid: self,
                point: p,
                j: 0,
            });
        }
        codes
    }
}

struct ApproxIter<'a> {
    grid: &'a VaGrid,
    point: &'a [f32],
    j: usize,
}

impl Iterator for ApproxIter<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        if self.j == self.point.len() {
            return None;
        }
        let c = self.grid.cell(self.j, self.point[self.j]);
        self.j += 1;
        Some(c)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.point.len() - self.j;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for ApproxIter<'_> {}

/// The VA-file index: in-memory approximation array + phase-1 scan.
pub struct VaFile {
    grid: VaGrid,
    approx: PackedCodes,
    n: usize,
}

impl VaFile {
    /// Default bits per dimension, as commonly used for VA-files.
    pub const DEFAULT_BITS: u32 = 8;

    pub fn build(dataset: &Dataset, bits: u32) -> Self {
        let grid = VaGrid::fit(dataset, bits);
        let approx = grid.encode_all(dataset);
        Self {
            grid,
            approx,
            n: dataset.len(),
        }
    }

    pub fn grid(&self) -> &VaGrid {
        &self.grid
    }

    /// Size of the approximation array in bytes (what C-VA must fit in the
    /// cache; also the sequential-scan volume of a disk-resident VA-file).
    pub fn approximation_bytes(&self) -> usize {
        self.approx.total_bytes()
    }

    /// Phase-1 scan: per-point bounds, returning candidates whose lower bound
    /// does not exceed the k-th smallest upper bound (VA-SSA). Candidates are
    /// returned in ascending lower-bound order, which is exactly the access
    /// order the multi-step refinement wants.
    pub fn scan(&self, q: &[f32], k: usize) -> Vec<(PointId, f64, f64)> {
        assert!(k >= 1);
        let mut entries: Vec<(f64, f64, u32)> = Vec::with_capacity(self.n);
        // Running k-th smallest upper bound via a bounded max-heap.
        let mut heap: std::collections::BinaryHeap<DistEntry<()>> =
            std::collections::BinaryHeap::with_capacity(k);
        for i in 0..self.n {
            let mut acc = BoundsAcc::new();
            for (j, cell) in self.approx.decode(i).enumerate() {
                let (lo, hi) = self.grid.cell_interval(j, cell);
                acc.add(q[j], lo, hi);
            }
            let b = acc.finish();
            if heap.len() < k {
                heap.push(DistEntry::new(b.ub, ()));
            } else if b.ub < heap.peek().expect("k>=1").dist {
                heap.pop();
                heap.push(DistEntry::new(b.ub, ()));
            }
            entries.push((b.lb, b.ub, i as u32));
        }
        let kth_ub = heap.peek().map(|e| e.dist).unwrap_or(f64::INFINITY);
        let mut cands: Vec<(PointId, f64, f64)> = entries
            .into_iter()
            .filter(|&(lb, _, _)| lb <= kth_ub)
            .map(|(lb, ub, i)| (PointId(i), lb, ub))
            .collect();
        cands.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite bounds"));
        cands
    }
}

impl CandidateIndex for VaFile {
    fn candidates(&self, q: &[f32], k: usize) -> Vec<PointId> {
        self.scan(q, k).into_iter().map(|(id, _, _)| id).collect()
    }

    fn name(&self) -> &'static str {
        "VA-file"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hc_core::distance::euclidean;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_dataset(n: usize, d: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let rows: Vec<Vec<f32>> = (0..n)
            .map(|_| (0..d).map(|_| rng.gen_range(-1.0..1.0)).collect())
            .collect();
        Dataset::from_rows(&rows)
    }

    fn exact_knn(ds: &Dataset, q: &[f32], k: usize) -> Vec<PointId> {
        let mut all: Vec<(f64, PointId)> = ds.iter().map(|(id, p)| (euclidean(q, p), id)).collect();
        all.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
        all.into_iter().take(k).map(|(_, id)| id).collect()
    }

    #[test]
    fn equi_depth_cells_balance_counts() {
        let ds = random_dataset(256, 2, 1);
        let grid = VaGrid::fit(&ds, 2); // 4 cells per dim
        for j in 0..2 {
            let mut counts = [0usize; 4];
            for (_, p) in ds.iter() {
                counts[grid.cell(j, p[j]) as usize] += 1;
            }
            for &c in &counts {
                assert!((40..=90).contains(&c), "unbalanced cells {counts:?}");
            }
        }
    }

    #[test]
    fn cell_interval_contains_its_values() {
        let ds = random_dataset(100, 3, 2);
        let grid = VaGrid::fit(&ds, 3);
        for (_, p) in ds.iter() {
            for (j, &v) in p.iter().enumerate() {
                let c = grid.cell(j, v);
                let (lo, hi) = grid.cell_interval(j, c);
                assert!(lo <= v && v <= hi, "v={v} cell=[{lo},{hi}]");
            }
        }
    }

    #[test]
    fn scan_bounds_sandwich_exact_distances() {
        let ds = random_dataset(60, 4, 3);
        let va = VaFile::build(&ds, 4);
        let q = [0.1f32, -0.2, 0.3, 0.0];
        for (id, lb, ub) in va.scan(&q, 5) {
            let d = euclidean(&q, ds.point(id));
            assert!(lb <= d + 1e-9 && d <= ub + 1e-9, "{id}: {lb} ≤ {d} ≤ {ub}");
        }
    }

    #[test]
    fn candidates_contain_exact_knn() {
        // VA-file is an exact method: its candidate set must contain the true
        // k nearest neighbors for any k.
        let ds = random_dataset(200, 6, 4);
        let va = VaFile::build(&ds, 6);
        let q: Vec<f32> = (0..6).map(|j| 0.05 * j as f32).collect();
        for k in [1usize, 5, 10] {
            let cands = va.candidates(&q, k);
            for nn in exact_knn(&ds, &q, k) {
                assert!(cands.contains(&nn), "k={k}: missing {nn}");
            }
        }
    }

    #[test]
    fn more_bits_shrink_candidate_sets() {
        let ds = random_dataset(300, 8, 5);
        let q = vec![0.0f32; 8];
        let coarse = VaFile::build(&ds, 2).candidates(&q, 10).len();
        let fine = VaFile::build(&ds, 8).candidates(&q, 10).len();
        assert!(fine <= coarse, "fine {fine} > coarse {coarse}");
    }

    #[test]
    fn approximation_bytes_scale_with_bits() {
        let ds = random_dataset(100, 10, 6);
        let b4 = VaFile::build(&ds, 4).approximation_bytes();
        let b8 = VaFile::build(&ds, 8).approximation_bytes();
        assert!(b8 > b4);
    }

    #[test]
    fn scan_is_sorted_by_lower_bound() {
        let ds = random_dataset(80, 4, 7);
        let va = VaFile::build(&ds, 4);
        let scan = va.scan(&[0.0, 0.0, 0.0, 0.0], 3);
        for w in scan.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
    }
}
