//! R-tree with Sort-Tile-Recursive (STR) bulk loading.
//!
//! Two roles in the reproduction:
//!
//! * its **leaf MBRs** define the multi-dimensional histogram buckets of
//!   mHC-R (paper §3.6.2): "we build an R-tree with 2^τ leaf nodes … then map
//!   the MBR of each leaf node to a bucket";
//! * it serves as a third [`LeafedIndex`] (MBR min-dist lower bounds) and a
//!   self-contained exact kNN baseline for tests — while also demonstrating
//!   the §6 observation that tree indexes degenerate in high dimensions.
//!
//! STR here tiles recursively over the highest-variance dimensions (at most
//! four levels of tiling — beyond that, high-dimensional tiling adds nothing
//! and the classic curse-of-dimensionality behaviour emerges, which is
//! exactly what Appendix B predicts for mHC-R).

use std::collections::BinaryHeap;

use hc_core::bounds::min_dist_sq_to_rect;
use hc_core::dataset::{Dataset, PointId};
use hc_core::distance::{euclidean, DistEntry};

use crate::traits::LeafedIndex;

/// An axis-aligned minimum bounding rectangle.
#[derive(Debug, Clone, PartialEq)]
pub struct Mbr {
    pub lo: Vec<f32>,
    pub hi: Vec<f32>,
}

impl Mbr {
    fn of_points(dataset: &Dataset, ids: &[u32]) -> Self {
        let d = dataset.dim();
        let mut lo = vec![f32::INFINITY; d];
        let mut hi = vec![f32::NEG_INFINITY; d];
        for &id in ids {
            for (j, &v) in dataset.point(PointId(id)).iter().enumerate() {
                if v < lo[j] {
                    lo[j] = v;
                }
                if v > hi[j] {
                    hi[j] = v;
                }
            }
        }
        Self { lo, hi }
    }

    fn union(rects: &[&Mbr]) -> Self {
        let d = rects[0].lo.len();
        let mut lo = vec![f32::INFINITY; d];
        let mut hi = vec![f32::NEG_INFINITY; d];
        for r in rects {
            for j in 0..d {
                lo[j] = lo[j].min(r.lo[j]);
                hi[j] = hi[j].max(r.hi[j]);
            }
        }
        Self { lo, hi }
    }

    /// Squared minimum distance from a query to this rectangle.
    pub fn min_dist_sq(&self, q: &[f32]) -> f64 {
        min_dist_sq_to_rect(q, &self.lo, &self.hi)
    }
}

struct InternalNode {
    mbr: Mbr,
    /// Child indices: into `internals` at `level-1`, or leaf ids at level 0.
    children: Vec<u32>,
}

/// STR-bulk-loaded R-tree.
pub struct RTree {
    leaves: Vec<Vec<PointId>>,
    leaf_mbrs: Vec<Mbr>,
    leaf_of: Vec<u32>,
    /// `levels[0]` groups leaves; `levels.last()` is the root level.
    levels: Vec<Vec<InternalNode>>,
    fanout: usize,
}

impl RTree {
    /// Bulk load with the given leaf capacity. Internal fanout is 32.
    pub fn bulk_load(dataset: &Dataset, leaf_capacity: usize) -> Self {
        assert!(leaf_capacity >= 1);
        assert!(!dataset.is_empty());
        let split_dims = top_variance_dims(dataset, 4);
        let mut leaves: Vec<Vec<u32>> = Vec::new();
        let ids: Vec<u32> = (0..dataset.len() as u32).collect();
        str_tile(dataset, ids, leaf_capacity, &split_dims, &mut leaves);

        let mut leaf_of = vec![0u32; dataset.len()];
        for (li, leaf) in leaves.iter().enumerate() {
            for &id in leaf {
                leaf_of[id as usize] = li as u32;
            }
        }
        let leaf_mbrs: Vec<Mbr> = leaves.iter().map(|l| Mbr::of_points(dataset, l)).collect();

        // Build internal levels by grouping consecutive children.
        let fanout = 32usize;
        let mut levels: Vec<Vec<InternalNode>> = Vec::new();
        let mut child_mbrs: Vec<Mbr> = leaf_mbrs.clone();
        while child_mbrs.len() > 1 {
            let mut level = Vec::new();
            for (gi, group) in child_mbrs.chunks(fanout).enumerate() {
                let refs: Vec<&Mbr> = group.iter().collect();
                level.push(InternalNode {
                    mbr: Mbr::union(&refs),
                    children: (0..group.len() as u32)
                        .map(|c| (gi * fanout) as u32 + c)
                        .collect(),
                });
            }
            child_mbrs = level.iter().map(|n| n.mbr.clone()).collect();
            levels.push(level);
            if levels.last().expect("just pushed").len() == 1 {
                break;
            }
        }

        Self {
            leaves: leaves
                .into_iter()
                .map(|l| l.into_iter().map(PointId).collect())
                .collect(),
            leaf_mbrs,
            leaf_of,
            levels,
            fanout,
        }
    }

    /// Bulk load targeting (at most) `num_leaves` leaves — the mHC-R
    /// constructor's "R-tree with 2^τ leaf nodes".
    pub fn with_num_leaves(dataset: &Dataset, num_leaves: usize) -> Self {
        let cap = dataset.len().div_ceil(num_leaves.max(1)).max(1);
        Self::bulk_load(dataset, cap)
    }

    /// The leaf MBRs as `(low, high)` pairs for
    /// [`hc_core::histogram::multidim::MultiDimBuckets::from_rects`].
    pub fn leaf_rects(&self) -> Vec<(Vec<f32>, Vec<f32>)> {
        self.leaf_mbrs
            .iter()
            .map(|m| (m.lo.clone(), m.hi.clone()))
            .collect()
    }

    /// Exact in-memory kNN via best-first MBR traversal (test baseline; the
    /// disk-aware search goes through `hc-query`'s tree pipeline instead).
    pub fn knn(&self, dataset: &Dataset, q: &[f32], k: usize) -> Vec<(PointId, f64)> {
        #[derive(PartialEq)]
        enum Entry {
            Leaf(u32),
            Node(usize, u32), // (level, index)
        }
        let mut heap: BinaryHeap<std::cmp::Reverse<DistEntry<Entry>>> = BinaryHeap::new();
        if let Some(top) = self.levels.last() {
            for (i, n) in top.iter().enumerate() {
                heap.push(std::cmp::Reverse(DistEntry::new(
                    n.mbr.min_dist_sq(q),
                    Entry::Node(self.levels.len() - 1, i as u32),
                )));
            }
        } else {
            for li in 0..self.leaves.len() {
                heap.push(std::cmp::Reverse(DistEntry::new(
                    self.leaf_mbrs[li].min_dist_sq(q),
                    Entry::Leaf(li as u32),
                )));
            }
        }
        let mut result: Vec<(PointId, f64)> = Vec::new();
        let mut worst = f64::INFINITY;
        while let Some(std::cmp::Reverse(e)) = heap.pop() {
            if result.len() >= k && e.dist > worst * worst {
                break;
            }
            match e.item {
                Entry::Node(level, idx) => {
                    let node = &self.levels[level][idx as usize];
                    for &c in &node.children {
                        if level == 0 {
                            heap.push(std::cmp::Reverse(DistEntry::new(
                                self.leaf_mbrs[c as usize].min_dist_sq(q),
                                Entry::Leaf(c),
                            )));
                        } else {
                            heap.push(std::cmp::Reverse(DistEntry::new(
                                self.levels[level - 1][c as usize].mbr.min_dist_sq(q),
                                Entry::Node(level - 1, c),
                            )));
                        }
                    }
                }
                Entry::Leaf(li) => {
                    for p in &self.leaves[li as usize] {
                        let d = euclidean(q, dataset.point(*p));
                        result.push((*p, d));
                    }
                    result.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"));
                    result.truncate(k);
                    if result.len() == k {
                        worst = result[k - 1].1;
                    }
                }
            }
        }
        result
    }

    /// Internal fanout (exposed for tests).
    pub fn fanout(&self) -> usize {
        self.fanout
    }
}

/// Indices of the `take` highest-variance dimensions.
fn top_variance_dims(dataset: &Dataset, take: usize) -> Vec<usize> {
    let d = dataset.dim();
    let n = dataset.len() as f64;
    let mut sums = vec![0.0f64; d];
    let mut sums2 = vec![0.0f64; d];
    for (_, p) in dataset.iter() {
        for (j, &v) in p.iter().enumerate() {
            sums[j] += v as f64;
            sums2[j] += (v as f64) * (v as f64);
        }
    }
    let mut vars: Vec<(f64, usize)> = (0..d)
        .map(|j| (sums2[j] / n - (sums[j] / n).powi(2), j))
        .collect();
    vars.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite variance"));
    vars.into_iter().take(take.min(d)).map(|(_, j)| j).collect()
}

/// Recursive STR tiling: sort by the current split dimension, cut into slabs
/// sized so the remaining dimensions can finish the job, recurse.
fn str_tile(
    dataset: &Dataset,
    mut ids: Vec<u32>,
    cap: usize,
    dims: &[usize],
    out: &mut Vec<Vec<u32>>,
) {
    let leaves_needed = ids.len().div_ceil(cap);
    if leaves_needed <= 1 || dims.is_empty() {
        for chunk in ids.chunks(cap) {
            out.push(chunk.to_vec());
        }
        return;
    }
    let dim = dims[0];
    ids.sort_by(|&a, &b| {
        dataset.point(PointId(a))[dim]
            .partial_cmp(&dataset.point(PointId(b))[dim])
            .expect("finite")
            .then(a.cmp(&b))
    });
    let slabs = (leaves_needed as f64).powf(1.0 / dims.len() as f64).ceil() as usize;
    let slab_size = ids.len().div_ceil(slabs.max(1));
    let mut rest = ids;
    while !rest.is_empty() {
        let take = slab_size.min(rest.len());
        let slab: Vec<u32> = rest.drain(..take).collect();
        str_tile(dataset, slab, cap, &dims[1..], out);
    }
}

impl LeafedIndex for RTree {
    fn num_leaves(&self) -> u32 {
        self.leaves.len() as u32
    }

    fn leaf_points(&self, leaf: u32) -> &[PointId] {
        &self.leaves[leaf as usize]
    }

    fn leaf_lower_bounds(&self, q: &[f32]) -> Vec<(u32, f64)> {
        self.leaf_mbrs
            .iter()
            .enumerate()
            .map(|(i, m)| (i as u32, m.min_dist_sq(q).sqrt()))
            .collect()
    }

    fn leaf_of(&self, id: PointId) -> u32 {
        self.leaf_of[id.index()]
    }

    fn name(&self) -> &'static str {
        "R-tree"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn dataset(n: usize, d: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        Dataset::from_rows(
            &(0..n)
                .map(|_| (0..d).map(|_| rng.gen_range(0.0..1.0)).collect())
                .collect::<Vec<_>>(),
        )
    }

    fn exact_knn(ds: &Dataset, q: &[f32], k: usize) -> Vec<PointId> {
        let mut all: Vec<(f64, PointId)> = ds.iter().map(|(id, p)| (euclidean(q, p), id)).collect();
        all.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
        all.into_iter().take(k).map(|(_, id)| id).collect()
    }

    #[test]
    fn leaves_partition_points_and_mbrs_cover_them() {
        let ds = dataset(200, 3, 1);
        let t = RTree::bulk_load(&ds, 8);
        let mut seen = vec![false; ds.len()];
        for li in 0..t.num_leaves() {
            for p in t.leaf_points(li) {
                assert!(!seen[p.index()]);
                seen[p.index()] = true;
                let m = &t.leaf_mbrs[li as usize];
                for (j, &v) in ds.point(*p).iter().enumerate() {
                    assert!(m.lo[j] <= v && v <= m.hi[j]);
                }
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn with_num_leaves_hits_the_target_roughly() {
        let ds = dataset(256, 4, 2);
        let t = RTree::with_num_leaves(&ds, 16);
        let n = t.num_leaves() as usize;
        assert!((12..=24).contains(&n), "got {n} leaves");
    }

    #[test]
    fn knn_matches_linear_scan() {
        let ds = dataset(300, 4, 3);
        let t = RTree::bulk_load(&ds, 10);
        for qi in [0usize, 50, 123] {
            let q = ds.point(PointId::from(qi)).to_vec();
            let got: Vec<PointId> = t.knn(&ds, &q, 5).into_iter().map(|(id, _)| id).collect();
            let want = exact_knn(&ds, &q, 5);
            // Distances may tie; compare distance multisets instead of ids.
            let gd: Vec<f64> = got.iter().map(|id| euclidean(&q, ds.point(*id))).collect();
            let wd: Vec<f64> = want.iter().map(|id| euclidean(&q, ds.point(*id))).collect();
            for (a, b) in gd.iter().zip(&wd) {
                assert!((a - b).abs() < 1e-9, "q{qi}: {gd:?} vs {wd:?}");
            }
        }
    }

    #[test]
    fn leaf_lower_bounds_are_sound() {
        let ds = dataset(150, 5, 4);
        let t = RTree::bulk_load(&ds, 7);
        let q = vec![0.5f32; 5];
        for (leaf, lb) in t.leaf_lower_bounds(&q) {
            for p in t.leaf_points(leaf) {
                assert!(lb <= euclidean(&q, ds.point(*p)) + 1e-9);
            }
        }
    }

    #[test]
    fn low_dim_leaf_rects_are_tight_but_high_dim_are_wide() {
        // Appendix B: in 2-d STR produces small tiles; in 32-d each leaf MBR
        // spans most of the domain on most dimensions.
        let narrow = dataset(512, 2, 5);
        let wide = dataset(512, 32, 5);
        let avg_side = |ds: &Dataset| {
            let t = RTree::with_num_leaves(ds, 64);
            let rects = t.leaf_rects();
            let mut total = 0.0f64;
            let mut count = 0usize;
            for (lo, hi) in &rects {
                for j in 0..lo.len() {
                    total += (hi[j] - lo[j]) as f64;
                    count += 1;
                }
            }
            total / count as f64
        };
        let s2 = avg_side(&narrow);
        let s32 = avg_side(&wide);
        assert!(s32 > 2.0 * s2, "2-d {s2} vs 32-d {s32}");
    }

    #[test]
    fn single_page_dataset_has_one_leaf() {
        let ds = dataset(5, 3, 6);
        let t = RTree::bulk_load(&ds, 8);
        assert_eq!(t.num_leaves(), 1);
        assert_eq!(t.knn(&ds, &[0.0, 0.0, 0.0], 2).len(), 2);
    }
}
