//! Index abstractions the query pipeline builds on.
//!
//! Two families, matching the paper:
//!
//! * [`CandidateIndex`] — candidate-generation indexes (C2LSH, VA-file):
//!   phase 1 of the paper's framework reports a set of point identifiers
//!   `C(q)` from in-memory structures; fetching the actual points is the
//!   refinement phase's job.
//! * [`LeafedIndex`] — exact tree indexes (iDistance, VP-tree, R-tree) whose
//!   kNN search interleaves candidate generation and refinement over disk
//!   pages holding *leaf nodes* (paper §3.6.1). The non-leaf part is held in
//!   memory; the search asks for leaves through a fetcher so the node cache
//!   can intercept.

use hc_core::dataset::PointId;

/// Phase-1 candidate generation: report `C(q)` (paper Definition 4).
pub trait CandidateIndex {
    /// Candidate identifiers for a query. `k` informs termination (e.g.
    /// C2LSH stops once `k + βn` frequent points are found) but the result is
    /// typically much larger than `k`.
    fn candidates(&self, q: &[f32], k: usize) -> Vec<PointId>;

    /// Human-readable index name for experiment tables.
    fn name(&self) -> &'static str;
}

/// An exact index organized as in-memory branch information over paged
/// leaves of data points.
pub trait LeafedIndex {
    /// Number of leaf nodes.
    fn num_leaves(&self) -> u32;

    /// Identifiers of the points stored in a leaf (branch metadata — reading
    /// this does not cost I/O; the *vectors* do).
    fn leaf_points(&self, leaf: u32) -> &[PointId];

    /// Lower bounds on `dist(q, p)` for every point `p` in each leaf,
    /// computed purely from in-memory branch information (MBRs, cluster
    /// radii, vantage-point distances). Returned as `(leaf, lower_bound)`
    /// pairs covering every leaf.
    fn leaf_lower_bounds(&self, q: &[f32]) -> Vec<(u32, f64)>;

    /// The leaf holding a given point (for refinement: fetching an individual
    /// point costs the I/O of its leaf node, paper Fig. 7).
    fn leaf_of(&self, id: PointId) -> u32;

    /// Human-readable index name for experiment tables.
    fn name(&self) -> &'static str;
}
