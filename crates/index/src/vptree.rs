//! VP-tree: a vantage-point metric tree (Boytsov & Naidan \[4\], following
//! Yianilos/Uhlmann), used as one of the exact indexes in the paper's
//! Fig. 16 experiment.
//!
//! Each internal node holds a vantage point `v` and splits its point set at
//! the median distance to `v`; we store the exact distance interval
//! `[lo, hi]` of each child for tight triangle-inequality bounds. Leaves hold
//! up to a disk node's worth of points. The in-memory part (vantage vectors
//! and intervals) plays the role of the paper's non-leaf nodes; the point
//! payloads are the disk-resident leaves.

use hc_core::dataset::{Dataset, PointId};
use hc_core::distance::euclidean;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::traits::LeafedIndex;

enum Node {
    Internal {
        /// Vantage point vector (copied: the in-memory index owns it).
        vp: Vec<f32>,
        /// Distance intervals to `vp` of the two children's points.
        inner_range: (f64, f64),
        outer_range: (f64, f64),
        inner: Box<Node>,
        outer: Box<Node>,
    },
    Leaf {
        leaf_id: u32,
    },
}

/// The VP-tree index.
pub struct VpTree {
    root: Node,
    leaves: Vec<Vec<PointId>>,
    leaf_of: Vec<u32>,
}

impl VpTree {
    /// Build with the given leaf capacity (disk node size in points).
    pub fn build(dataset: &Dataset, leaf_capacity: usize, seed: u64) -> Self {
        assert!(leaf_capacity >= 1);
        assert!(!dataset.is_empty());
        let mut rng = StdRng::seed_from_u64(seed);
        let mut leaves = Vec::new();
        let mut leaf_of = vec![0u32; dataset.len()];
        let ids: Vec<u32> = (0..dataset.len() as u32).collect();
        let root = build_node(
            dataset,
            ids,
            leaf_capacity,
            &mut rng,
            &mut leaves,
            &mut leaf_of,
        );
        Self {
            root,
            leaves,
            leaf_of,
        }
    }

    /// A file ordering grouping each leaf's points consecutively.
    pub fn file_order(&self) -> Vec<u32> {
        self.leaves
            .iter()
            .flat_map(|l| l.iter().map(|p| p.0))
            .collect()
    }
}

fn build_node(
    dataset: &Dataset,
    mut ids: Vec<u32>,
    cap: usize,
    rng: &mut StdRng,
    leaves: &mut Vec<Vec<PointId>>,
    leaf_of: &mut [u32],
) -> Node {
    if ids.len() <= cap {
        let leaf_id = leaves.len() as u32;
        for &id in &ids {
            leaf_of[id as usize] = leaf_id;
        }
        leaves.push(ids.into_iter().map(PointId).collect());
        return Node::Leaf { leaf_id };
    }
    // Random vantage point; it stays in the split (its distance is 0 → inner).
    let vp_id = ids[rng.gen_range(0..ids.len())];
    let vp = dataset.point(PointId(vp_id)).to_vec();
    let mut with_d: Vec<(f64, u32)> = ids
        .drain(..)
        .map(|id| (euclidean(&vp, dataset.point(PointId(id))), id))
        .collect();
    with_d.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite").then(a.1.cmp(&b.1)));
    let mid = with_d.len() / 2;
    let (inner_part, outer_part) = with_d.split_at(mid.max(1));
    let inner_range = (
        inner_part.first().expect("non-empty").0,
        inner_part.last().expect("non-empty").0,
    );
    let outer_range = if outer_part.is_empty() {
        (f64::INFINITY, f64::NEG_INFINITY)
    } else {
        (
            outer_part.first().expect("non-empty").0,
            outer_part.last().expect("non-empty").0,
        )
    };
    let inner_ids: Vec<u32> = inner_part.iter().map(|&(_, id)| id).collect();
    let outer_ids: Vec<u32> = outer_part.iter().map(|&(_, id)| id).collect();
    // Degenerate split (all identical distances): fall back to a leaf-size
    // chunking by splitting the id list in half without metric guarantees
    // collapsing — the ranges above remain correct either way.
    let inner = Box::new(build_node(dataset, inner_ids, cap, rng, leaves, leaf_of));
    let outer = if outer_part.is_empty() {
        // No outer child: represent as an empty leaf to keep the structure
        // binary. (Cannot happen with mid >= 1 and len > cap >= 1 unless all
        // points coincide; handled by making inner take everything above.)
        unreachable!("outer partition cannot be empty when len > cap")
    } else {
        Box::new(build_node(dataset, outer_ids, cap, rng, leaves, leaf_of))
    };
    Node::Internal {
        vp,
        inner_range,
        outer_range,
        inner,
        outer,
    }
}

impl LeafedIndex for VpTree {
    fn num_leaves(&self) -> u32 {
        self.leaves.len() as u32
    }

    fn leaf_points(&self, leaf: u32) -> &[PointId] {
        &self.leaves[leaf as usize]
    }

    fn leaf_lower_bounds(&self, q: &[f32]) -> Vec<(u32, f64)> {
        let mut out = Vec::with_capacity(self.leaves.len());
        collect_bounds(&self.root, q, 0.0, &mut out);
        out
    }

    fn leaf_of(&self, id: PointId) -> u32 {
        self.leaf_of[id.index()]
    }

    fn name(&self) -> &'static str {
        "VP-tree"
    }
}

fn collect_bounds(node: &Node, q: &[f32], lb: f64, out: &mut Vec<(u32, f64)>) {
    match node {
        Node::Leaf { leaf_id } => out.push((*leaf_id, lb)),
        Node::Internal {
            vp,
            inner_range,
            outer_range,
            inner,
            outer,
        } => {
            let dv = euclidean(q, vp);
            // Points in a child have dist-to-vp within [lo, hi]; by the
            // triangle inequality dist(q, p) ≥ max(dv − hi, lo − dv, 0).
            let child_lb =
                |range: &(f64, f64)| -> f64 { (dv - range.1).max(range.0 - dv).max(0.0).max(lb) };
            collect_bounds(inner, q, child_lb(inner_range), out);
            collect_bounds(outer, q, child_lb(outer_range), out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset(n: usize, d: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        Dataset::from_rows(
            &(0..n)
                .map(|_| (0..d).map(|_| rng.gen_range(-5.0..5.0)).collect())
                .collect::<Vec<_>>(),
        )
    }

    #[test]
    fn partitions_all_points_into_leaves() {
        let ds = dataset(137, 4, 1);
        let t = VpTree::build(&ds, 6, 1);
        let mut seen = vec![false; ds.len()];
        for leaf in 0..t.num_leaves() {
            let pts = t.leaf_points(leaf);
            assert!(pts.len() <= 6);
            for p in pts {
                assert!(!seen[p.index()]);
                seen[p.index()] = true;
                assert_eq!(t.leaf_of(*p), leaf);
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn leaf_lower_bounds_cover_every_leaf_once() {
        let ds = dataset(64, 3, 2);
        let t = VpTree::build(&ds, 4, 2);
        let bounds = t.leaf_lower_bounds(&[0.0, 0.0, 0.0]);
        assert_eq!(bounds.len(), t.num_leaves() as usize);
        let mut leaves: Vec<u32> = bounds.iter().map(|&(l, _)| l).collect();
        leaves.sort_unstable();
        leaves.dedup();
        assert_eq!(leaves.len(), t.num_leaves() as usize);
    }

    #[test]
    fn leaf_lower_bounds_are_sound() {
        let ds = dataset(100, 5, 3);
        let t = VpTree::build(&ds, 5, 3);
        for qi in [0usize, 17, 55] {
            let q = ds.point(PointId::from(qi)).to_vec();
            for (leaf, lb) in t.leaf_lower_bounds(&q) {
                for p in t.leaf_points(leaf) {
                    let d = euclidean(&q, ds.point(*p));
                    assert!(lb <= d + 1e-9, "leaf {leaf}: {lb} > {d}");
                }
            }
        }
    }

    #[test]
    fn query_point_leaf_has_zero_bound() {
        let ds = dataset(80, 4, 4);
        let t = VpTree::build(&ds, 4, 4);
        let q = ds.point(PointId(10)).to_vec();
        let own = t.leaf_of(PointId(10));
        let bounds = t.leaf_lower_bounds(&q);
        let own_lb = bounds.iter().find(|&&(l, _)| l == own).expect("present").1;
        assert!(own_lb <= 1e-9);
    }

    #[test]
    fn handles_duplicate_points() {
        let rows: Vec<Vec<f32>> = (0..20).map(|_| vec![1.0, 2.0]).collect();
        let ds = Dataset::from_rows(&rows);
        let t = VpTree::build(&ds, 3, 5);
        let total: usize = (0..t.num_leaves()).map(|l| t.leaf_points(l).len()).sum();
        assert_eq!(total, 20);
    }

    #[test]
    fn file_order_groups_leaves() {
        let ds = dataset(50, 3, 6);
        let t = VpTree::build(&ds, 4, 6);
        let order = t.file_order();
        let mut pos = 0;
        for leaf in 0..t.num_leaves() {
            for &id in &order[pos..pos + t.leaf_points(leaf).len()] {
                assert_eq!(t.leaf_of(PointId(id)), leaf);
            }
            pos += t.leaf_points(leaf).len();
        }
    }
}
