//! Locality-sensitive hashing: the p-stable family and the C2LSH index.

pub mod c2lsh;
pub mod e2lsh;
pub mod family;

pub use c2lsh::{C2lsh, C2lshParams, C2lshRun};
pub use e2lsh::{E2lsh, E2lshParams};
pub use family::{sample_family, PStableHash};
