//! Classic E2LSH (Datar et al. \[7\], Gionis et al. \[16\]): `L` hash tables,
//! each keyed by the concatenation of `m` p-stable projections, with optional
//! multi-probe (Lv et al. \[24\]).
//!
//! The paper's caching framework is index-agnostic ("our proposed solution
//! can be used on both types of index structures", §6); C2LSH is its default
//! but any candidate-generation index plugs into Algorithm 1. E2LSH is the
//! classic alternative: a query probes its own bucket in each table (plus,
//! with multi-probe, the buckets whose keys differ by ±1 in one position)
//! and the union of colliding points forms `C(q)`.

use std::collections::HashMap;

use hc_core::dataset::{Dataset, PointId};
use rand::rngs::StdRng;
use rand::SeedableRng;

use super::family::PStableHash;
use crate::traits::CandidateIndex;

/// E2LSH parameters.
#[derive(Debug, Clone)]
pub struct E2lshParams {
    /// Number of hash tables `L`.
    pub tables: usize,
    /// Projections concatenated per table key (`m`, often called `k` in the
    /// LSH literature; renamed to avoid clashing with the result size).
    pub projections: usize,
    /// Base bucket width `w`; `None` derives it from the data like C2LSH.
    pub width: Option<f64>,
    /// Multi-probe: additionally probe buckets whose key differs by ±1 in
    /// exactly one coordinate (2·m extra probes per table).
    pub multi_probe: bool,
    pub seed: u64,
}

impl Default for E2lshParams {
    fn default() -> Self {
        Self {
            tables: 8,
            projections: 4,
            width: None,
            multi_probe: true,
            seed: 0xE25,
        }
    }
}

/// One hash table: composite key → point ids.
struct Table {
    hashes: Vec<PStableHash>,
    buckets: HashMap<Vec<i64>, Vec<u32>>,
}

impl Table {
    fn key(&self, p: &[f32]) -> Vec<i64> {
        self.hashes.iter().map(|h| h.bucket(p)).collect()
    }
}

/// The E2LSH index.
pub struct E2lsh {
    tables: Vec<Table>,
    multi_probe: bool,
    n: usize,
}

impl E2lsh {
    pub fn build(dataset: &Dataset, params: E2lshParams) -> Self {
        assert!(params.tables >= 1 && params.projections >= 1);
        let width = params
            .width
            .unwrap_or_else(|| super::c2lsh::data_scale_width(dataset, params.seed) * 4.0);
        let mut rng = StdRng::seed_from_u64(params.seed);
        let tables = (0..params.tables)
            .map(|_| {
                let hashes: Vec<PStableHash> = (0..params.projections)
                    .map(|_| PStableHash::sample(dataset.dim(), width, &mut rng))
                    .collect();
                let mut buckets: HashMap<Vec<i64>, Vec<u32>> = HashMap::new();
                let table = Table {
                    hashes,
                    buckets: HashMap::new(),
                };
                for (id, p) in dataset.iter() {
                    buckets.entry(table.key(p)).or_default().push(id.0);
                }
                Table {
                    hashes: table.hashes,
                    buckets,
                }
            })
            .collect();
        Self {
            tables,
            multi_probe: params.multi_probe,
            n: dataset.len(),
        }
    }

    /// Number of non-empty buckets across all tables (diagnostics).
    pub fn total_buckets(&self) -> usize {
        self.tables.iter().map(|t| t.buckets.len()).sum()
    }
}

impl CandidateIndex for E2lsh {
    fn candidates(&self, q: &[f32], _k: usize) -> Vec<PointId> {
        let mut seen = vec![false; self.n];
        let mut out = Vec::new();
        let mut collect = |ids: Option<&Vec<u32>>| {
            if let Some(ids) = ids {
                for &id in ids {
                    if !seen[id as usize] {
                        seen[id as usize] = true;
                        out.push(PointId(id));
                    }
                }
            }
        };
        for t in &self.tables {
            let key = t.key(q);
            collect(t.buckets.get(&key));
            if self.multi_probe {
                for i in 0..key.len() {
                    for delta in [-1i64, 1] {
                        let mut probe = key.clone();
                        probe[i] += delta;
                        collect(t.buckets.get(&probe));
                    }
                }
            }
        }
        out
    }

    fn name(&self) -> &'static str {
        "E2LSH"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hc_core::distance::euclidean;
    use rand::Rng;

    fn clustered(n_per: usize, d: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::new();
        for c in 0..4 {
            let center = c as f32 * 8.0;
            for _ in 0..n_per {
                rows.push((0..d).map(|_| center + rng.gen_range(-0.5..0.5)).collect());
            }
        }
        Dataset::from_rows(&rows)
    }

    #[test]
    fn candidates_are_unique() {
        let ds = clustered(40, 8, 1);
        let idx = E2lsh::build(&ds, E2lshParams::default());
        let cands = idx.candidates(&[0.0f32; 8], 5);
        let mut ids: Vec<u32> = cands.iter().map(|p| p.0).collect();
        ids.sort_unstable();
        let len = ids.len();
        ids.dedup();
        assert_eq!(ids.len(), len, "duplicate candidates");
    }

    #[test]
    fn nn_recall_is_reasonable() {
        let ds = clustered(50, 8, 2);
        let idx = E2lsh::build(&ds, E2lshParams::default());
        let mut hits = 0;
        for qi in 0..20u32 {
            let q = ds.point(PointId(qi * 9)).to_vec();
            let nn = ds
                .iter()
                .filter(|(id, _)| id.0 != qi * 9)
                .min_by(|a, b| {
                    euclidean(&q, a.1)
                        .partial_cmp(&euclidean(&q, b.1))
                        .expect("finite")
                })
                .expect("non-empty")
                .0;
            if idx.candidates(&q, 1).contains(&nn) {
                hits += 1;
            }
        }
        assert!(hits >= 14, "recall {hits}/20");
    }

    #[test]
    fn multi_probe_widens_candidate_sets() {
        let ds = clustered(50, 8, 3);
        let base = E2lsh::build(
            &ds,
            E2lshParams {
                multi_probe: false,
                ..Default::default()
            },
        );
        let probed = E2lsh::build(
            &ds,
            E2lshParams {
                multi_probe: true,
                ..Default::default()
            },
        );
        let q = vec![0.2f32; 8];
        assert!(probed.candidates(&q, 1).len() >= base.candidates(&q, 1).len());
    }

    #[test]
    fn more_tables_increase_recall_surface() {
        let ds = clustered(50, 8, 4);
        let small = E2lsh::build(
            &ds,
            E2lshParams {
                tables: 1,
                ..Default::default()
            },
        );
        let large = E2lsh::build(
            &ds,
            E2lshParams {
                tables: 12,
                ..Default::default()
            },
        );
        let q = vec![8.1f32; 8];
        assert!(large.candidates(&q, 1).len() >= small.candidates(&q, 1).len());
        assert!(large.total_buckets() > small.total_buckets());
    }

    #[test]
    fn works_through_the_candidate_trait() {
        let ds = clustered(30, 4, 5);
        let idx: Box<dyn CandidateIndex> = Box::new(E2lsh::build(&ds, E2lshParams::default()));
        assert_eq!(idx.name(), "E2LSH");
        assert!(!idx.candidates(&[0.0f32; 4], 3).is_empty());
    }
}
