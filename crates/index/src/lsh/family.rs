//! p-stable LSH hash family (Datar et al. \[7\]).
//!
//! `h_{a,b}(p) = ⌊(a·p + b) / w⌋` with `a` a vector of i.i.d. standard
//! Gaussians and `b` uniform in `[0, w)`. Nearby points collide in the same
//! base bucket with probability decreasing in their distance — the property
//! both classic LSH and C2LSH's collision counting rely on.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One p-stable hash function.
#[derive(Debug, Clone)]
pub struct PStableHash {
    a: Vec<f32>,
    b: f64,
    w: f64,
}

impl PStableHash {
    /// Draw a function for dimensionality `d` with bucket width `w`.
    pub fn sample(d: usize, w: f64, rng: &mut StdRng) -> Self {
        assert!(w > 0.0, "bucket width must be positive");
        // Box–Muller Gaussians: keeps us independent of rand_distr.
        let mut a = Vec::with_capacity(d);
        while a.len() < d {
            let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f64::consts::PI * u2;
            a.push((r * theta.cos()) as f32);
            if a.len() < d {
                a.push((r * theta.sin()) as f32);
            }
        }
        let b = rng.gen_range(0.0..w);
        Self { a, b, w }
    }

    /// The raw projection `a·p + b` (before bucketing).
    #[inline]
    pub fn project(&self, p: &[f32]) -> f64 {
        debug_assert_eq!(p.len(), self.a.len());
        let dot: f64 = self
            .a
            .iter()
            .zip(p.iter())
            .map(|(&ai, &pi)| ai as f64 * pi as f64)
            .sum();
        dot + self.b
    }

    /// The base bucket id `⌊(a·p + b) / w⌋`.
    #[inline]
    pub fn bucket(&self, p: &[f32]) -> i64 {
        (self.project(p) / self.w).floor() as i64
    }

    /// Base bucket width `w`.
    pub fn width(&self) -> f64 {
        self.w
    }
}

/// Sample `m` independent functions.
pub fn sample_family(m: usize, d: usize, w: f64, seed: u64) -> Vec<PStableHash> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..m)
        .map(|_| PStableHash::sample(d, w, &mut rng))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn projection_is_linear() {
        let mut rng = StdRng::seed_from_u64(1);
        let h = PStableHash::sample(4, 1.0, &mut rng);
        let p = [1.0f32, 2.0, 3.0, 4.0];
        let q = [2.0f32, 4.0, 6.0, 8.0];
        let zero = [0.0f32; 4];
        let hp = h.project(&p) - h.project(&zero);
        let hq = h.project(&q) - h.project(&zero);
        assert!((hq - 2.0 * hp).abs() < 1e-6);
    }

    #[test]
    fn identical_points_share_buckets() {
        let fam = sample_family(10, 8, 4.0, 42);
        let p = [0.5f32; 8];
        for h in &fam {
            assert_eq!(h.bucket(&p), h.bucket(&p));
        }
    }

    #[test]
    fn near_points_collide_more_than_far_points() {
        let fam = sample_family(200, 16, 4.0, 7);
        let p = [0.0f32; 16];
        let mut near = [0.0f32; 16];
        near[0] = 0.5;
        let mut far = [0.0f32; 16];
        for v in far.iter_mut() {
            *v = 5.0;
        }
        let collisions =
            |a: &[f32], b: &[f32]| fam.iter().filter(|h| h.bucket(a) == h.bucket(b)).count();
        let c_near = collisions(&p, &near);
        let c_far = collisions(&p, &far);
        assert!(c_near > c_far, "near {c_near} vs far {c_far}");
    }

    #[test]
    fn family_is_deterministic_per_seed() {
        let a = sample_family(3, 5, 2.0, 99);
        let b = sample_family(3, 5, 2.0, 99);
        let p = [1.0f32, -2.0, 0.5, 3.3, -0.1];
        for (ha, hb) in a.iter().zip(&b) {
            assert_eq!(ha.bucket(&p), hb.bucket(&p));
        }
    }
}
