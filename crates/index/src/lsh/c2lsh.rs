//! C2LSH: locality-sensitive hashing with dynamic collision counting
//! (Gan, Feng, Fang, Ng; SIGMOD 2012 — the paper's reference \[13\] and its
//! default candidate-generation index).
//!
//! Structure: `m` p-stable hash functions over *base* buckets of width `w`.
//! Instead of many hash tables, C2LSH counts, per point, how many of the `m`
//! functions put the point into the same bucket as the query. Counting starts
//! at search radius `R = 1` (base buckets) and proceeds through *virtual
//! rehashing*: at radius `R`, `R` consecutive base buckets merge into one
//! super-bucket (`⌊h/R⌋`), so collisions only accumulate as `R` grows by the
//! approximation ratio `c` per level. A point whose collision count reaches
//! the threshold `l = ⌈α·m⌉` becomes a candidate; the search stops once
//! `k + β` candidates exist (the paper's `k + βn` false-positive allowance).
//!
//! Implementation notes: each function keeps its points sorted by base bucket
//! id. Super-bucket intervals are dyadic-nested as `R` multiplies by an
//! integer `c` (`⌊⌊h/R⌋/c⌋ = ⌊h/(cR)⌋`), so per function we keep a coverage
//! window into the sorted array and only process *newly covered* entries at
//! each level — every table entry is touched at most once per query.

use std::sync::Mutex;

use hc_core::dataset::{Dataset, PointId};
use hc_core::distance::euclidean;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use super::family::{sample_family, PStableHash};
use crate::traits::CandidateIndex;

/// C2LSH tuning knobs with paper-style defaults.
#[derive(Debug, Clone)]
pub struct C2lshParams {
    /// Number of hash functions `m`.
    pub m: usize,
    /// Collision threshold fraction `α`; threshold `l = ⌈α·m⌉`.
    pub alpha: f64,
    /// Approximation ratio `c` (integer radius multiplier per level).
    pub approx_ratio: i64,
    /// Base bucket width `w`; `None` derives it from sampled pair distances.
    pub base_width: Option<f64>,
    /// Candidate budget beyond `k` (the `βn` allowance; the C2LSH paper uses
    /// `β = 100/n`, i.e. ~100 extra candidates).
    pub extra_candidates: usize,
    /// RNG seed for the hash family.
    pub seed: u64,
}

impl Default for C2lshParams {
    fn default() -> Self {
        Self {
            m: 20,
            alpha: 0.6,
            approx_ratio: 2,
            base_width: None,
            extra_candidates: 250,
            seed: 0x5EED,
        }
    }
}

/// Diagnostics of one candidate-generation run.
#[derive(Debug, Clone)]
pub struct C2lshRun {
    pub candidates: Vec<PointId>,
    /// Number of virtual-rehashing levels executed.
    pub levels: u32,
    /// The `(R, c)`-guarantee distance `c · R · w` at termination — an upper
    /// bound on how far accepted candidates can be (Theorem 3's `D_max`).
    pub guarantee_distance: f64,
}

struct Scratch {
    counts: Vec<u16>,
    epoch: Vec<u32>,
    cur_epoch: u32,
    /// Per-function coverage window `[lo, hi)` into the sorted table.
    windows: Vec<(usize, usize)>,
}

impl Scratch {
    fn new(n: usize, m: usize) -> Self {
        Self {
            counts: vec![0; n],
            epoch: vec![0; n],
            cur_epoch: 0,
            windows: vec![(0, 0); m],
        }
    }
}

/// The C2LSH index.
pub struct C2lsh {
    params: C2lshParams,
    hashes: Vec<PStableHash>,
    /// Per function: `(base_bucket, point_id)` sorted by bucket.
    tables: Vec<Vec<(i64, u32)>>,
    threshold: u16,
    n: usize,
    width: f64,
    /// Largest |base bucket id| across all tables: once the radius exceeds
    /// twice this span the coverage windows can no longer grow (dyadic
    /// `⌊h/R⌋` intervals never cross zero), so the search must stop.
    max_abs_bucket: i64,
    /// Pool of per-query counting scratches. Concurrent queries each pop one
    /// (or allocate a fresh one when the pool runs dry) and return it when
    /// done, so `run(&self, …)` stays lock-free for the counting itself and
    /// the index is `Sync` — a requirement of the multi-threaded query
    /// server, which shares one `Arc<C2lsh>` across workers.
    scratch_pool: Mutex<Vec<Scratch>>,
}

impl C2lsh {
    /// Build over a dataset (offline; costs no simulated I/O).
    pub fn build(dataset: &Dataset, params: C2lshParams) -> Self {
        assert!(params.m >= 1);
        assert!(params.approx_ratio >= 2, "c must be an integer ≥ 2");
        assert!((0.0..=1.0).contains(&params.alpha));
        let n = dataset.len();
        let width = params
            .base_width
            .unwrap_or_else(|| data_scale_width(dataset, params.seed));
        let hashes = sample_family(params.m, dataset.dim(), width, params.seed);
        let tables: Vec<Vec<(i64, u32)>> = hashes
            .iter()
            .map(|h| {
                let mut t: Vec<(i64, u32)> =
                    dataset.iter().map(|(id, p)| (h.bucket(p), id.0)).collect();
                t.sort_unstable();
                t
            })
            .collect();
        let threshold = ((params.alpha * params.m as f64).ceil() as u16).max(1);
        let m = params.m;
        let max_abs_bucket = tables
            .iter()
            .flat_map(|t: &Vec<(i64, u32)>| {
                [
                    t.first().map(|&(b, _)| b.abs()),
                    t.last().map(|&(b, _)| b.abs()),
                ]
            })
            .flatten()
            .max()
            .unwrap_or(0);
        Self {
            params,
            hashes,
            tables,
            threshold,
            n,
            width,
            max_abs_bucket,
            scratch_pool: Mutex::new(vec![Scratch::new(n, m)]),
        }
    }

    /// Base bucket width in use.
    pub fn base_width(&self) -> f64 {
        self.width
    }

    /// Collision threshold `l`.
    pub fn threshold(&self) -> u16 {
        self.threshold
    }

    /// Candidate generation with diagnostics.
    pub fn run(&self, q: &[f32], k: usize) -> C2lshRun {
        let limit = k + self.params.extra_candidates;
        let mut scratch = {
            let mut pool = self.scratch_pool.lock().expect("scratch pool poisoned");
            pool.pop()
                .unwrap_or_else(|| Scratch::new(self.n, self.params.m))
        };
        let s = &mut scratch;
        s.cur_epoch = s.cur_epoch.wrapping_add(1);
        if s.cur_epoch == 0 {
            // Epoch counter wrapped: hard-reset to stay sound.
            s.epoch.iter_mut().for_each(|e| *e = 0);
            s.cur_epoch = 1;
        }
        for w in &mut s.windows {
            *w = (0, 0);
        }

        let q_buckets: Vec<i64> = self.hashes.iter().map(|h| h.bucket(q)).collect();
        let mut candidates: Vec<PointId> = Vec::with_capacity(limit.min(self.n));
        let mut radius: i64 = 1;
        let mut levels = 0u32;
        let mut initialized = vec![false; self.params.m];

        loop {
            levels += 1;
            let mut fully_covered = true;
            for (i, table) in self.tables.iter().enumerate() {
                let a = q_buckets[i].div_euclid(radius);
                let (lo_val, hi_val) = (a * radius, a * radius + radius - 1);
                let new_lo = table.partition_point(|&(b, _)| b < lo_val);
                let new_hi = table.partition_point(|&(b, _)| b <= hi_val);
                let (old_lo, old_hi) = s.windows[i];
                let ranges: [(usize, usize); 2] = if initialized[i] {
                    debug_assert!(new_lo <= old_lo && new_hi >= old_hi, "windows must nest");
                    [(new_lo, old_lo), (old_hi, new_hi)]
                } else {
                    initialized[i] = true;
                    [(new_lo, new_hi), (0, 0)]
                };
                for (lo, hi) in ranges {
                    for &(_, id) in &table[lo..hi] {
                        let idx = id as usize;
                        if s.epoch[idx] != s.cur_epoch {
                            s.epoch[idx] = s.cur_epoch;
                            s.counts[idx] = 0;
                        }
                        s.counts[idx] += 1;
                        if s.counts[idx] == self.threshold {
                            candidates.push(PointId(id));
                        }
                    }
                }
                s.windows[i] = (new_lo, new_hi);
                if new_lo != 0 || new_hi != table.len() {
                    fully_covered = false;
                }
            }
            // Stop on: enough candidates; every table fully covered; or the
            // radius has outgrown the bucket span — beyond that the dyadic
            // ⌊h/R⌋ windows are final (a window rooted at a non-negative
            // query bucket never reaches negative buckets and vice versa),
            // so points below the collision threshold can never become
            // candidates and further rehashing is a no-op.
            let exhausted = radius > 4 * (self.max_abs_bucket + 1);
            if candidates.len() >= limit || fully_covered || exhausted {
                break;
            }
            radius = radius.saturating_mul(self.params.approx_ratio);
        }

        self.scratch_pool
            .lock()
            .expect("scratch pool poisoned")
            .push(scratch);

        C2lshRun {
            candidates,
            levels,
            guarantee_distance: self.params.approx_ratio as f64 * radius as f64 * self.width,
        }
    }
}

impl CandidateIndex for C2lsh {
    fn candidates(&self, q: &[f32], k: usize) -> Vec<PointId> {
        self.run(q, k).candidates
    }

    fn name(&self) -> &'static str {
        "C2LSH"
    }
}

/// Heuristic base width: an eighth of the median distance over sampled pairs,
/// so that genuinely close pairs collide at small radii while far pairs need
/// several virtual rehashes. Shared with the E2LSH index.
pub(crate) fn data_scale_width(dataset: &Dataset, seed: u64) -> f64 {
    let n = dataset.len();
    if n < 2 {
        return 1.0;
    }
    let mut rng = StdRng::seed_from_u64(seed ^ 0xA11CE);
    let samples = 256.min(n * (n - 1) / 2).max(1);
    let mut dists: Vec<f64> = (0..samples)
        .map(|_| {
            let a = rng.gen_range(0..n);
            let mut b = rng.gen_range(0..n);
            if b == a {
                b = (b + 1) % n;
            }
            euclidean(
                dataset.point(PointId::from(a)),
                dataset.point(PointId::from(b)),
            )
        })
        .collect();
    dists.sort_by(|x, y| x.partial_cmp(y).expect("finite distances"));
    let median = dists[dists.len() / 2];
    if median > 0.0 {
        median / 8.0
    } else {
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn clustered_dataset(n_per: usize, d: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::new();
        for c in 0..4 {
            let center = c as f32 * 10.0;
            for _ in 0..n_per {
                rows.push((0..d).map(|_| center + rng.gen_range(-0.5..0.5)).collect());
            }
        }
        Dataset::from_rows(&rows)
    }

    #[test]
    fn finds_near_cluster_candidates_first() {
        let ds = clustered_dataset(50, 8, 1);
        let idx = C2lsh::build(
            &ds,
            C2lshParams {
                extra_candidates: 30,
                ..Default::default()
            },
        );
        // Query at the center of cluster 0: candidates should be dominated by
        // cluster-0 ids (0..50).
        let q = vec![0.0f32; 8];
        let cands = idx.candidates(&q, 10);
        assert!(cands.len() >= 40, "too few candidates: {}", cands.len());
        let in_cluster0 = cands.iter().filter(|id| id.0 < 50).count();
        assert!(
            in_cluster0 * 2 > cands.len(),
            "cluster 0 hits {in_cluster0}/{}",
            cands.len()
        );
    }

    #[test]
    fn recall_of_true_nn_is_high() {
        let ds = clustered_dataset(50, 8, 2);
        let idx = C2lsh::build(&ds, C2lshParams::default());
        let mut hits = 0;
        let queries = 20;
        for qi in 0..queries {
            let q: Vec<f32> = ds.point(PointId(qi * 7)).to_vec();
            // Exact NN excluding the point itself.
            let exact = ds
                .iter()
                .filter(|(id, _)| id.0 != qi * 7)
                .min_by(|a, b| {
                    euclidean(&q, a.1)
                        .partial_cmp(&euclidean(&q, b.1))
                        .expect("finite")
                })
                .expect("non-empty")
                .0;
            if idx.candidates(&q, 10).contains(&exact) {
                hits += 1;
            }
        }
        assert!(hits >= queries * 8 / 10, "recall {hits}/{queries}");
    }

    #[test]
    fn candidate_budget_is_respected_approximately() {
        let ds = clustered_dataset(100, 8, 3);
        let extra = 50;
        let idx = C2lsh::build(
            &ds,
            C2lshParams {
                extra_candidates: extra,
                ..Default::default()
            },
        );
        let cands = idx.candidates(&[0.0f32; 8], 10);
        // One level can overshoot, but not by the whole dataset.
        assert!(cands.len() >= 10);
        assert!(cands.len() < 400, "overshoot: {}", cands.len());
    }

    #[test]
    fn unreachable_candidate_budget_still_terminates() {
        // Tiny dataset, impossible budget: the radius bound must end the
        // search once coverage windows stop growing. Points that collide in
        // fewer than l functions (e.g. whose projections land on the other
        // side of zero in many tables) legitimately never become candidates.
        let ds = clustered_dataset(3, 4, 4);
        let idx = C2lsh::build(
            &ds,
            C2lshParams {
                extra_candidates: 10_000,
                ..Default::default()
            },
        );
        let run = idx.run(&[0.0f32; 4], 1);
        assert!(!run.candidates.is_empty());
        assert!(run.candidates.len() <= ds.len());
        // No duplicates.
        let mut ids: Vec<u32> = run.candidates.iter().map(|p| p.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), run.candidates.len());
    }

    #[test]
    fn runs_are_independent_across_queries() {
        let ds = clustered_dataset(30, 8, 5);
        let idx = C2lsh::build(&ds, C2lshParams::default());
        let q0 = vec![0.0f32; 8];
        let a = idx.candidates(&q0, 10);
        let _ = idx.candidates(&[30.0f32; 8], 10);
        let b = idx.candidates(&q0, 10);
        assert_eq!(a, b, "scratch state leaked between queries");
    }

    #[test]
    fn index_is_shareable_across_threads() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<C2lsh>();
        let ds = clustered_dataset(30, 8, 7);
        let idx = std::sync::Arc::new(C2lsh::build(&ds, C2lshParams::default()));
        let q0 = vec![0.0f32; 8];
        let want = idx.candidates(&q0, 10);
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let idx = std::sync::Arc::clone(&idx);
                let q = q0.clone();
                std::thread::spawn(move || idx.candidates(&q, 10))
            })
            .collect();
        for h in handles {
            assert_eq!(
                h.join().expect("no panic"),
                want,
                "results must not depend on which pooled scratch served the query"
            );
        }
    }

    #[test]
    fn guarantee_distance_grows_with_levels() {
        let ds = clustered_dataset(50, 8, 6);
        let idx = C2lsh::build(&ds, C2lshParams::default());
        let run = idx.run(&[0.0f32; 8], 10);
        assert!(run.levels >= 1);
        assert!(run.guarantee_distance > 0.0);
    }
}
