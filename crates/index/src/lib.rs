//! # hc-index
//!
//! Disk-based kNN indexes built from scratch for the reproduction:
//!
//! * [`lsh::C2lsh`] — the paper's default candidate-generation index \[13\]
//!   (p-stable projections + dynamic collision counting at virtually-rehashed
//!   radii),
//! * [`vafile::VaFile`] — the vector-approximation file \[32\]\[33\], also the
//!   substrate of the C-VA cache baseline,
//! * [`idistance::IDistance`] — reference-point distance keys over paged
//!   leaves \[20\],
//! * [`vptree::VpTree`] — vantage-point metric tree \[4\],
//! * [`rtree::RTree`] — STR-bulk-loaded R-tree (supplies mHC-R's leaf-MBR
//!   buckets, §3.6.2),
//! * [`kmeans`] — Lloyd's k-means with k-means++ seeding (iDistance
//!   references, Clustered file ordering).
//!
//! The [`traits`] module defines the two index abstractions the shared query
//! pipeline consumes: [`traits::CandidateIndex`] (phase-1 candidate
//! generation) and [`traits::LeafedIndex`] (exact tree search over paged
//! leaves, paper §3.6.1).

pub mod idistance;
pub mod kmeans;
pub mod lsh;
pub mod rtree;
pub mod traits;
pub mod vafile;
pub mod vptree;

pub use idistance::IDistance;
pub use lsh::{C2lsh, C2lshParams};
pub use rtree::RTree;
pub use traits::{CandidateIndex, LeafedIndex};
pub use vafile::VaFile;
pub use vptree::VpTree;
