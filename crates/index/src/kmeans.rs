//! Lloyd's k-means with k-means++ seeding.
//!
//! Used for (a) the iDistance reference points (paper \[20\] picks cluster
//! centers as references) and (b) the Clustered file ordering of §5.2.2.

use hc_core::dataset::{Dataset, PointId};
use hc_core::distance::sq_euclidean;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Result of a k-means run.
#[derive(Debug, Clone)]
pub struct KMeans {
    /// Flattened centers, `k × d` row-major.
    centers: Vec<f32>,
    dim: usize,
    /// Per-point cluster assignment.
    pub assignment: Vec<u32>,
    /// Per-point distance to its assigned center.
    pub dist_to_center: Vec<f64>,
}

impl KMeans {
    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.centers.len() / self.dim
    }

    /// Center of cluster `i`.
    pub fn center(&self, i: u32) -> &[f32] {
        let i = i as usize;
        &self.centers[i * self.dim..(i + 1) * self.dim]
    }

    /// Maximum assigned-point distance per cluster (the iDistance cluster
    /// radius `r_i`).
    pub fn cluster_radii(&self) -> Vec<f64> {
        let mut radii = vec![0.0f64; self.k()];
        for (a, d) in self.assignment.iter().zip(&self.dist_to_center) {
            let r = &mut radii[*a as usize];
            if *d > *r {
                *r = *d;
            }
        }
        radii
    }

    /// Nearest center to an arbitrary point: `(cluster, distance)`.
    pub fn assign(&self, p: &[f32]) -> (u32, f64) {
        let mut best = 0u32;
        let mut best_d = f64::INFINITY;
        for i in 0..self.k() as u32 {
            let d = sq_euclidean(p, self.center(i));
            if d < best_d {
                best_d = d;
                best = i;
            }
        }
        (best, best_d.sqrt())
    }
}

/// Run k-means. `k` is capped at the dataset size; `max_iters` Lloyd rounds
/// (convergence usually happens earlier and stops the loop).
pub fn kmeans(dataset: &Dataset, k: usize, seed: u64, max_iters: usize) -> KMeans {
    let n = dataset.len();
    assert!(n > 0, "k-means needs a non-empty dataset");
    let k = k.clamp(1, n);
    let d = dataset.dim();
    let mut rng = StdRng::seed_from_u64(seed);

    // k-means++ seeding: first center uniform, then D² sampling.
    let mut centers: Vec<f32> = Vec::with_capacity(k * d);
    let first = rng.gen_range(0..n);
    centers.extend_from_slice(dataset.point(PointId::from(first)));
    let mut d2: Vec<f64> = dataset
        .iter()
        .map(|(_, p)| sq_euclidean(p, &centers[..d]))
        .collect();
    while centers.len() / d < k {
        let total: f64 = d2.iter().sum();
        let chosen = if total <= 0.0 {
            rng.gen_range(0..n)
        } else {
            let mut target = rng.gen_range(0.0..total);
            let mut idx = n - 1;
            for (i, &w) in d2.iter().enumerate() {
                if target < w {
                    idx = i;
                    break;
                }
                target -= w;
            }
            idx
        };
        let c0 = centers.len();
        centers.extend_from_slice(dataset.point(PointId::from(chosen)));
        let new_center = centers[c0..].to_vec();
        for (i, (_, p)) in dataset.iter().enumerate() {
            let nd = sq_euclidean(p, &new_center);
            if nd < d2[i] {
                d2[i] = nd;
            }
        }
    }

    // Lloyd iterations.
    let mut assignment = vec![0u32; n];
    let mut dist_to_center = vec![0.0f64; n];
    for _ in 0..max_iters.max(1) {
        let mut changed = false;
        for (i, (_, p)) in dataset.iter().enumerate() {
            let mut best = 0u32;
            let mut best_d = f64::INFINITY;
            for c in 0..k as u32 {
                let cd = sq_euclidean(p, &centers[c as usize * d..(c as usize + 1) * d]);
                if cd < best_d {
                    best_d = cd;
                    best = c;
                }
            }
            if assignment[i] != best {
                assignment[i] = best;
                changed = true;
            }
            dist_to_center[i] = best_d.sqrt();
        }
        if !changed {
            break;
        }
        // Recompute centers; empty clusters keep their previous position.
        let mut sums = vec![0.0f64; k * d];
        let mut counts = vec![0u64; k];
        for (i, (_, p)) in dataset.iter().enumerate() {
            let c = assignment[i] as usize;
            counts[c] += 1;
            for (j, &v) in p.iter().enumerate() {
                sums[c * d + j] += v as f64;
            }
        }
        for c in 0..k {
            if counts[c] == 0 {
                continue;
            }
            for j in 0..d {
                centers[c * d + j] = (sums[c * d + j] / counts[c] as f64) as f32;
            }
        }
    }

    KMeans {
        centers,
        dim: d,
        assignment,
        dist_to_center,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blob_dataset() -> Dataset {
        let mut rows = Vec::new();
        for i in 0..20 {
            let jitter = (i % 5) as f32 * 0.01;
            rows.push(vec![0.0 + jitter, 0.0 + jitter]);
        }
        for i in 0..20 {
            let jitter = (i % 5) as f32 * 0.01;
            rows.push(vec![10.0 + jitter, 10.0 + jitter]);
        }
        Dataset::from_rows(&rows)
    }

    #[test]
    fn separates_two_blobs() {
        let km = kmeans(&two_blob_dataset(), 2, 1, 50);
        assert_eq!(km.k(), 2);
        let a0 = km.assignment[0];
        assert!(km.assignment[..20].iter().all(|&a| a == a0));
        assert!(km.assignment[20..].iter().all(|&a| a != a0));
    }

    #[test]
    fn distances_match_assignment() {
        let ds = two_blob_dataset();
        let km = kmeans(&ds, 2, 3, 50);
        for (i, (_, p)) in ds.iter().enumerate() {
            let c = km.center(km.assignment[i]);
            let d = hc_core::distance::euclidean(p, c);
            assert!((d - km.dist_to_center[i]).abs() < 1e-6);
        }
    }

    #[test]
    fn radii_cover_all_members() {
        let ds = two_blob_dataset();
        let km = kmeans(&ds, 2, 5, 50);
        let radii = km.cluster_radii();
        for (i, &a) in km.assignment.iter().enumerate() {
            assert!(km.dist_to_center[i] <= radii[a as usize] + 1e-9);
        }
    }

    #[test]
    fn assign_returns_nearest_center() {
        let km = kmeans(&two_blob_dataset(), 2, 7, 50);
        let (c_near_origin, d) = km.assign(&[0.5, 0.5]);
        let (c_far, _) = km.assign(&[9.5, 9.5]);
        assert_ne!(c_near_origin, c_far);
        assert!(d < 2.0);
    }

    #[test]
    fn k_capped_at_dataset_size() {
        let ds = Dataset::from_rows(&[vec![1.0], vec![2.0]]);
        let km = kmeans(&ds, 10, 0, 10);
        assert_eq!(km.k(), 2);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let ds = two_blob_dataset();
        let a = kmeans(&ds, 3, 11, 30);
        let b = kmeans(&ds, 3, 11, 30);
        assert_eq!(a.assignment, b.assignment);
    }
}
