//! Multi-threaded stress tests for [`ShardedCompactCache`]: invariants the
//! single-threaded `CompactPointCache` guarantees must survive N threads
//! hammering the shards concurrently.

use std::sync::Arc;
use std::thread;

use hc_cache::concurrent::ConcurrentPointCache;
use hc_cache::point::{CacheLookup, CompactPointCache, PointCache};
use hc_core::dataset::PointId;
use hc_core::histogram::classic::equi_width;
use hc_core::quantize::Quantizer;
use hc_core::scheme::{ApproxScheme, GlobalScheme};
use hc_serve::ShardedCompactCache;

const DIM: usize = 4;

fn scheme() -> Arc<dyn ApproxScheme> {
    let quant = Quantizer::new(0.0, 1024.0, 256);
    Arc::new(GlobalScheme::new(equi_width(256, 64), quant, DIM))
}

fn point(i: u32) -> Vec<f32> {
    (0..DIM)
        .map(|j| ((i as usize * 31 + j * 7) % 1024) as f32)
        .collect()
}

/// With room for every admitted id, no admission may be lost: concurrent
/// admits of distinct ids all stay resident.
#[test]
fn concurrent_admissions_are_not_lost_when_capacity_allows() {
    const THREADS: u32 = 8;
    const PER_THREAD: u32 = 200;
    let s = scheme();
    let total_items = (THREADS * PER_THREAD) as usize;
    // Generous budget: 4× the space the items need, so even a skewed shard
    // never has to evict.
    let cache = Arc::new(ShardedCompactCache::lru(
        Arc::clone(&s),
        s.bytes_per_point() * total_items * 4,
        8,
    ));
    thread::scope(|scope| {
        for t in 0..THREADS {
            let cache = Arc::clone(&cache);
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    let id = t * PER_THREAD + i;
                    cache.admit(PointId(id), &point(id));
                }
            });
        }
    });
    assert_eq!(cache.len(), total_items, "admissions lost");
    for id in 0..THREADS * PER_THREAD {
        assert!(cache.contains(PointId(id)), "id {id} missing");
    }
}

/// Under a tight budget with far more admissions than fit, every shard must
/// stay within its byte budget at all times — checked at the end and via
/// the summed accessors.
#[test]
fn shards_never_exceed_their_budget_under_churn() {
    const THREADS: u32 = 8;
    const OPS: u32 = 2000;
    let s = scheme();
    // Room for ~32 items total across 4 shards; 16k admissions churn hard.
    let cache = Arc::new(ShardedCompactCache::lru(
        Arc::clone(&s),
        s.bytes_per_point() * 32,
        4,
    ));
    thread::scope(|scope| {
        for t in 0..THREADS {
            let cache = Arc::clone(&cache);
            scope.spawn(move || {
                for i in 0..OPS {
                    let id = (t * OPS + i) % 4096;
                    cache.admit(PointId(id), &point(id));
                    let _ = cache.lookup(&point(id), PointId(id));
                }
            });
        }
    });
    for (shard, (used, cap)) in cache.shard_occupancy().iter().enumerate() {
        assert!(used <= cap, "shard {shard} over budget: {used} > {cap}");
    }
    assert!(cache.used_bytes() <= cache.capacity_bytes());
}

/// Mixed readers and writers racing on overlapping ids: lookups must only
/// ever see `Miss` or sound `Bounds` (lb ≤ ub), never torn state.
#[test]
fn racing_lookups_see_only_miss_or_sound_bounds() {
    const THREADS: u32 = 8;
    const OPS: u32 = 1500;
    let s = scheme();
    let cache = Arc::new(ShardedCompactCache::lru(
        Arc::clone(&s),
        s.bytes_per_point() * 64,
        8,
    ));
    thread::scope(|scope| {
        for t in 0..THREADS {
            let cache = Arc::clone(&cache);
            scope.spawn(move || {
                for i in 0..OPS {
                    let id = (i * 13 + t) % 256; // heavy id overlap across threads
                    if t % 2 == 0 {
                        cache.admit(PointId(id), &point(id));
                    }
                    let q = point(id.wrapping_add(t));
                    match cache.lookup(&q, PointId(id)) {
                        CacheLookup::Miss => {}
                        CacheLookup::Exact(d) => assert!(d.is_finite() && d >= 0.0),
                        CacheLookup::Bounds(b) => {
                            assert!(b.lb.is_finite() && b.ub.is_finite(), "torn bounds");
                            assert!(b.lb <= b.ub + 1e-9, "lb {} > ub {}", b.lb, b.ub);
                        }
                    }
                }
            });
        }
    });
}

/// The sharded cache is a pure partition of the compact cache: for the same
/// resident contents, a concurrent lookup returns bit-identical bounds to a
/// single-threaded `CompactPointCache` holding the same points.
#[test]
fn concurrent_bounds_equal_single_threaded_bounds() {
    const N: u32 = 300;
    let s = scheme();
    let sharded = Arc::new(ShardedCompactCache::lru(
        Arc::clone(&s),
        s.bytes_per_point() * N as usize * 2,
        8,
    ));
    let mut reference =
        CompactPointCache::lru(Arc::clone(&s), s.bytes_per_point() * N as usize * 2);

    // Populate the sharded cache from 4 threads, the reference serially.
    thread::scope(|scope| {
        for t in 0..4u32 {
            let sharded = Arc::clone(&sharded);
            scope.spawn(move || {
                for id in (t..N).step_by(4) {
                    sharded.admit(PointId(id), &point(id));
                }
            });
        }
    });
    for id in 0..N {
        reference.admit(PointId(id), &point(id));
    }

    let queries: Vec<Vec<f32>> = (0..20).map(|q| point(q * 37 + 5)).collect();
    thread::scope(|scope| {
        for q in &queries {
            let sharded = Arc::clone(&sharded);
            let s = Arc::clone(&s);
            scope.spawn(move || {
                // Each thread re-derives the reference bounds itself: the
                // encoding is deterministic, so a fresh single-threaded
                // cache with the same contents gives the ground truth.
                let mut solo =
                    CompactPointCache::lru(Arc::clone(&s), s.bytes_per_point() * N as usize * 2);
                for id in 0..N {
                    solo.admit(PointId(id), &point(id));
                }
                for id in 0..N {
                    let got = sharded.lookup(q, PointId(id));
                    let want = solo.lookup(q, PointId(id));
                    match (got, want) {
                        (CacheLookup::Bounds(g), CacheLookup::Bounds(w)) => {
                            assert_eq!(g.lb, w.lb, "lb differs for id {id}");
                            assert_eq!(g.ub, w.ub, "ub differs for id {id}");
                        }
                        (g, w) => panic!("variant mismatch for id {id}: {g:?} vs {w:?}"),
                    }
                }
            });
        }
    });
    // Silence the unused warning: the serial reference also matches.
    let q = &queries[0];
    match (
        sharded.lookup(q, PointId(0)),
        reference.lookup(q, PointId(0)),
    ) {
        (CacheLookup::Bounds(g), CacheLookup::Bounds(w)) => {
            assert_eq!(g.lb, w.lb);
            assert_eq!(g.ub, w.ub);
        }
        (g, w) => panic!("variant mismatch: {g:?} vs {w:?}"),
    }
}
