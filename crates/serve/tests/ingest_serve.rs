//! Serving the live-mutable dataset: [`QueryServer::start_ingest`] must
//! return exact answers while the engine keeps mutating between (and
//! under) requests, surface the manifest generation as the trace's cache
//! generation, and expose the ingest section on `/statusz`.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use hc_core::dataset::PointId;
use hc_ingest::{IngestConfig, IngestEngine, WalDevice};
use hc_obs::MetricsRegistry;
use hc_serve::{QueryOutcome, QueryServer, ServeConfig};

const DIM: usize = 4;

fn vector(id: u32) -> Vec<f32> {
    (0..DIM)
        .map(|d| ((id as usize * 7 + d * 13) % 101) as f32 / 3.0)
        .collect()
}

fn query(i: usize) -> Vec<f32> {
    let mut v = vector((i % 50) as u32);
    v[0] += 0.25;
    v
}

/// Brute-force top-k over the test's shadow map, same ordering as the
/// engine: ascending exact distance, ties by id.
fn reference_top_k(shadow: &HashMap<u32, Vec<f32>>, q: &[f32], k: usize) -> Vec<PointId> {
    let mut scored: Vec<(f64, u32)> = shadow
        .iter()
        .map(|(&id, v)| {
            let d = q
                .iter()
                .zip(v.iter())
                .map(|(a, b)| {
                    let diff = *a as f64 - *b as f64;
                    diff * diff
                })
                .sum::<f64>()
                .sqrt();
            (d, id)
        })
        .collect();
    scored.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    scored.truncate(k);
    scored.into_iter().map(|(_, id)| PointId(id)).collect()
}

fn http_get(addr: SocketAddr, path: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect admin");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    write!(stream, "GET {path} HTTP/1.1\r\nHost: localhost\r\n\r\n").expect("request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("response");
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_owned())
        .unwrap_or_default();
    (status, body)
}

#[test]
fn served_answers_stay_exact_while_the_dataset_mutates() {
    let registry = MetricsRegistry::new();
    let device = Arc::new(WalDevice::new());
    let mut config = IngestConfig::new(DIM);
    // Small memtable budget so the run crosses several seals (and with
    // compact_min_segments = 2, at least one compaction) mid-traffic.
    config.memtable_max_bytes = 24 * (DIM * 4 + 64);
    config.compact_min_segments = 2;
    let engine = Arc::new(IngestEngine::new(device, config, &registry));
    let server = QueryServer::start_ingest(
        Arc::clone(&engine),
        ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        },
        &registry,
    );

    let mut shadow: HashMap<u32, Vec<f32>> = HashMap::new();
    for step in 0..200u32 {
        // Mixed mutation stream: mostly inserts, periodic deletes and
        // upserts, so the live set crosses memtable/segment boundaries.
        match step % 5 {
            4 if !shadow.is_empty() => {
                let victim = *shadow.keys().min().expect("non-empty");
                engine.delete(PointId(victim)).expect("admitted");
                shadow.remove(&victim);
            }
            _ => {
                let id = step % 120;
                engine.insert(PointId(id), vector(id)).expect("admitted");
                shadow.insert(id, vector(id));
            }
        }
        if step % 7 == 0 {
            engine.maybe_compact();
        }
        let q = query(step as usize);
        let ticket = server.submit(q.clone(), 5, None).expect("admitted");
        match ticket.wait() {
            QueryOutcome::Done(resp) => {
                let expected = reference_top_k(&shadow, &q, 5);
                assert_eq!(
                    resp.ids, expected,
                    "step {step}: served answer must be exact over the live set"
                );
            }
            other => panic!("step {step}: expected Done, got {other:?}"),
        }
    }
    let status = engine.status();
    assert!(status.seals >= 2, "run must cross seals: {status:?}");
    assert!(
        status.compactions >= 1,
        "run must compact at least once: {status:?}"
    );
    assert!(
        server.cache_generation() >= status.seals,
        "served generation is the manifest generation"
    );
    // Traces carry the manifest generation the query observed.
    let traces = registry.traces().to_vec();
    assert!(
        traces.iter().any(|t| t.cache_generation > 0),
        "post-seal queries must stamp a nonzero generation"
    );
    server.shutdown();
}

#[test]
fn statusz_reports_the_ingest_section() {
    let registry = MetricsRegistry::new();
    let device = Arc::new(WalDevice::new());
    let engine = Arc::new(IngestEngine::new(device, IngestConfig::new(DIM), &registry));
    for id in 0..40u32 {
        engine.insert(PointId(id), vector(id)).expect("admitted");
    }
    engine.delete(PointId(3)).expect("admitted");
    engine.seal();
    let server = QueryServer::start_ingest(
        Arc::clone(&engine),
        ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        },
        &registry,
    );
    let admin = server.serve_admin("127.0.0.1:0").expect("bind admin");
    let (status, body) = http_get(admin.local_addr(), "/statusz");
    assert_eq!(status, 200);
    assert!(
        body.contains("\"ingest\":{"),
        "ingest-backed server must expose the ingest section: {body}"
    );
    assert!(
        body.contains("\"segments\":1"),
        "one sealed segment: {body}"
    );
    assert!(
        body.contains("\"memtable_points\":0"),
        "seal drained the memtable: {body}"
    );
    assert!(
        body.contains("\"manifest_generation\":1"),
        "first seal publishes generation 1: {body}"
    );
    assert!(body.contains("\"seals\":1"), "{body}");
    assert!(
        body.contains("\"kind\":\"ingest.seal\""),
        "seal must land in the ops event log: {body}"
    );
    // Metrics surface the ingest.* series too.
    let (status, metrics) = http_get(admin.local_addr(), "/metrics.json");
    assert_eq!(status, 200);
    assert!(metrics.contains("\"name\":\"ingest.inserts\",\"value\":40"));
    assert!(metrics.contains("\"name\":\"ingest.seals\",\"value\":1"));
    admin.shutdown();
    server.shutdown();
}

#[test]
fn frozen_backends_report_a_null_ingest_section() {
    // The point backend has no ingest engine: probes must see "ingest":null
    // rather than a missing key or a zeroed struct.
    use hc_core::dataset::Dataset;
    use hc_core::histogram::classic::equi_width;
    use hc_core::quantize::Quantizer;
    use hc_core::scheme::{ApproxScheme, GlobalScheme};
    use hc_index::traits::CandidateIndex;
    use hc_query::SharedParts;
    use hc_serve::ShardedCompactCache;
    use hc_storage::point_file::PointFile;

    struct ScanIndex;
    impl CandidateIndex for ScanIndex {
        fn candidates(&self, _q: &[f32], _k: usize) -> Vec<PointId> {
            (0..16).map(PointId).collect()
        }
        fn name(&self) -> &'static str {
            "scan"
        }
    }

    let registry = MetricsRegistry::new();
    let dataset = Dataset::from_rows(
        &(0..16)
            .map(|i| vec![i as f32, (i * 3 % 16) as f32])
            .collect::<Vec<_>>(),
    );
    let parts = SharedParts::new(Arc::new(ScanIndex), Arc::new(PointFile::new(dataset)));
    let scheme: Arc<dyn ApproxScheme> = Arc::new(GlobalScheme::new(
        equi_width(256, 64),
        Quantizer::new(0.0, 16.0, 256),
        2,
    ));
    let cache = Arc::new(ShardedCompactCache::lru(
        Arc::clone(&scheme),
        scheme.bytes_per_point() * 32,
        2,
    ));
    let server = QueryServer::start(parts, cache, ServeConfig::default(), &registry);
    assert!(server.ingest_status().is_none());
    let admin = server.serve_admin("127.0.0.1:0").expect("bind admin");
    let (status, body) = http_get(admin.local_addr(), "/statusz");
    assert_eq!(status, 200);
    assert!(body.contains("\"ingest\":null"), "{body}");
    admin.shutdown();
    server.shutdown();
}
