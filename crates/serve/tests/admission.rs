//! Admission-control and lifecycle tests for [`QueryServer`]: overload
//! sheds with explicit errors, expired deadlines time out instead of
//! running, shutdown drains and joins cleanly, and concurrent results match
//! the single-threaded engine.

use std::sync::Arc;
use std::time::{Duration, Instant};

use hc_cache::point::NoCache;
use hc_core::dataset::{Dataset, PointId};
use hc_core::histogram::classic::equi_width;
use hc_core::quantize::Quantizer;
use hc_core::scheme::{ApproxScheme, GlobalScheme};
use hc_index::traits::CandidateIndex;
use hc_obs::MetricsRegistry;
use hc_query::{KnnEngine, SharedParts};
use hc_serve::{QueryOutcome, QueryServer, ServeConfig, ShardedCompactCache, SubmitError};
use hc_storage::io_stats::IoModel;
use hc_storage::point_file::PointFile;

const N: usize = 64;
const DIM: usize = 2;

/// Every query scans everything — deterministic candidates, nonzero I/O.
struct ScanIndex;

impl CandidateIndex for ScanIndex {
    fn candidates(&self, _q: &[f32], _k: usize) -> Vec<PointId> {
        (0..N as u32).map(PointId).collect()
    }

    fn name(&self) -> &'static str {
        "scan"
    }
}

fn dataset() -> Dataset {
    Dataset::from_rows(
        &(0..N)
            .map(|i| vec![i as f32, (i * 3 % N) as f32])
            .collect::<Vec<_>>(),
    )
}

fn parts() -> SharedParts {
    SharedParts::new(Arc::new(ScanIndex), Arc::new(PointFile::new(dataset())))
}

fn scheme() -> Arc<dyn ApproxScheme> {
    let quant = Quantizer::new(0.0, N as f32, 256);
    Arc::new(GlobalScheme::new(equi_width(256, 64), quant, DIM))
}

fn shared_cache() -> Arc<ShardedCompactCache> {
    let s = scheme();
    Arc::new(ShardedCompactCache::lru(
        Arc::clone(&s),
        s.bytes_per_point() * N * 2,
        4,
    ))
}

fn query(i: usize) -> Vec<f32> {
    vec![(i % N) as f32 + 0.25, ((i * 3) % N) as f32 + 0.25]
}

#[test]
fn full_queue_rejects_with_queue_full() {
    // One worker stalled ~100 ms per query (HDD pages × scale), capacity-2
    // queue: a burst of 10 cannot all fit.
    let config = ServeConfig {
        workers: 1,
        queue_capacity: 2,
        io_model: IoModel::HDD,
        simulate_io_scale: Some(1.0),
        eager_refetch: false,
        ..ServeConfig::default()
    };
    let registry = MetricsRegistry::new();
    let server = QueryServer::start(parts(), shared_cache(), config, &registry);
    let mut rejected = 0;
    let mut tickets = Vec::new();
    for i in 0..10 {
        match server.submit(query(i), 5, None) {
            Ok(t) => tickets.push(t),
            Err(SubmitError::QueueFull) => rejected += 1,
            Err(other) => panic!("unexpected submit error: {other:?}"),
        }
    }
    assert!(
        rejected > 0,
        "burst of 10 into a capacity-2 queue never shed"
    );
    for t in tickets {
        assert!(matches!(t.wait(), QueryOutcome::Done(_)));
    }
    let snap = registry.snapshot();
    assert_eq!(snap.counter("serve.rejected"), Some(rejected));
    server.shutdown();
}

#[test]
fn expired_deadline_times_out_instead_of_running() {
    let registry = MetricsRegistry::new();
    let server = QueryServer::start(
        parts(),
        shared_cache(),
        ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        },
        &registry,
    );
    // A deadline already in the past must be shed by the worker, not run.
    let expired = Instant::now() - Duration::from_millis(5);
    let ticket = server.submit(query(0), 5, Some(expired)).expect("admitted");
    assert!(matches!(ticket.wait(), QueryOutcome::TimedOut));
    // A generous deadline runs normally.
    let ok = server
        .submit(query(1), 5, Some(Instant::now() + Duration::from_secs(30)))
        .expect("admitted");
    assert!(matches!(ok.wait(), QueryOutcome::Done(_)));
    let snap = registry.snapshot();
    assert_eq!(snap.counter("serve.timed_out"), Some(1));
    server.shutdown();
}

#[test]
fn shutdown_fulfils_everything_and_joins_all_workers() {
    let registry = MetricsRegistry::new();
    let server = QueryServer::start(
        parts(),
        shared_cache(),
        ServeConfig {
            workers: 3,
            queue_capacity: 64,
            ..ServeConfig::default()
        },
        &registry,
    );
    let tickets: Vec<_> = (0..30)
        .map(|i| server.submit(query(i), 5, None).expect("admitted"))
        .collect();
    // Shutdown drains the queue: every admitted request still gets an
    // outcome, and all workers are joined before shutdown() returns.
    let mut done = 0;
    let handle =
        std::thread::spawn(move || tickets.into_iter().map(|t| t.wait()).collect::<Vec<_>>());
    server.shutdown();
    let outcomes = handle.join().expect("waiter");
    for outcome in outcomes {
        assert!(matches!(outcome, QueryOutcome::Done(_)));
        done += 1;
    }
    assert_eq!(done, 30);
    let snap = registry.snapshot();
    assert_eq!(snap.counter("serve.completed"), Some(30));
}

#[test]
fn submissions_after_shutdown_begin_are_refused() {
    let registry = MetricsRegistry::new();
    let server = QueryServer::start(parts(), shared_cache(), ServeConfig::default(), &registry);
    server.shutdown();
    // The server is consumed; nothing to assert beyond a clean join. The
    // ShuttingDown path is exercised via the closed queue in loadgen, and
    // in-flight bookkeeping is validated by shutdown()'s internal check.
}

#[test]
fn concurrent_results_match_single_threaded_engine() {
    let ds = dataset();
    let file = PointFile::new(ds);
    let index = ScanIndex;
    let mut reference = KnnEngine::new(&index, &file, Box::new(NoCache));
    let k = 5;
    let queries: Vec<Vec<f32>> = (0..40).map(query).collect();
    let want: Vec<Vec<PointId>> = queries
        .iter()
        .map(|q| {
            let (mut ids, _) = reference.query(q, k);
            ids.sort_unstable_by_key(|id| id.0);
            ids
        })
        .collect();

    let registry = MetricsRegistry::new();
    let server = QueryServer::start(
        parts(),
        shared_cache(),
        ServeConfig {
            workers: 4,
            ..ServeConfig::default()
        },
        &registry,
    );
    let tickets: Vec<_> = queries
        .iter()
        .map(|q| server.submit(q.clone(), k, None).expect("admitted"))
        .collect();
    for (i, ticket) in tickets.into_iter().enumerate() {
        match ticket.wait() {
            QueryOutcome::Done(resp) => {
                let mut got = resp.ids;
                got.sort_unstable_by_key(|id| id.0);
                assert_eq!(got, want[i], "query {i} diverged under concurrency");
            }
            other => panic!("expected Done on a pristine store, got {other:?}"),
        }
    }
    server.shutdown();
}
