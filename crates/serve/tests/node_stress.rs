//! Multi-threaded stress tests for [`ShardedNodeCache`]: invariants the
//! single-threaded `LruNodeCache` guarantees must survive N threads
//! hammering the shards concurrently, and the labeled per-shard `cache.*`
//! counters must account for every operation exactly.

use std::sync::Arc;
use std::thread;

use hc_cache::concurrent::ConcurrentNodeCache;
use hc_cache::node::{LruNodeCache, NodeCache, NodeLookup};
use hc_core::histogram::classic::equi_width;
use hc_core::quantize::Quantizer;
use hc_core::scheme::{ApproxScheme, GlobalScheme};
use hc_obs::MetricsRegistry;
use hc_serve::ShardedNodeCache;

const DIM: usize = 2;
const POINTS_PER_LEAF: usize = 3;

fn scheme() -> Arc<dyn ApproxScheme> {
    let quant = Quantizer::new(0.0, 1024.0, 256);
    Arc::new(GlobalScheme::new(equi_width(256, 64), quant, DIM))
}

fn leaf_points(leaf: u32) -> Vec<Vec<f32>> {
    (0..POINTS_PER_LEAF)
        .map(|i| {
            (0..DIM)
                .map(|j| ((leaf as usize * 31 + i * 11 + j * 7) % 1024) as f32)
                .collect()
        })
        .collect()
}

fn admit(cache: &dyn ConcurrentNodeCache, leaf: u32) {
    let pts = leaf_points(leaf);
    cache.admit(leaf, &mut pts.iter().map(|p| p.as_slice()));
}

/// With room for every admitted leaf, no admission may be lost: concurrent
/// admits of distinct leaves all stay resident.
#[test]
fn concurrent_leaf_admissions_are_not_lost_when_capacity_allows() {
    const THREADS: u32 = 8;
    const PER_THREAD: u32 = 64;
    let s = scheme();
    let total = (THREADS * PER_THREAD) as usize;
    let cache = Arc::new(ShardedNodeCache::lru(
        Arc::clone(&s),
        s.bytes_per_point() * POINTS_PER_LEAF * total * 4,
        8,
    ));
    thread::scope(|scope| {
        for t in 0..THREADS {
            let cache = Arc::clone(&cache);
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    admit(cache.as_ref(), t * PER_THREAD + i);
                }
            });
        }
    });
    assert_eq!(cache.len(), total, "admissions lost");
    for leaf in 0..THREADS * PER_THREAD {
        assert!(cache.contains(leaf), "leaf {leaf} missing");
    }
}

/// Under a tight budget with far more admissions than fit, every shard must
/// stay within its byte slice — no cross-shard borrowing, no overshoot.
#[test]
fn shards_never_exceed_their_budget_under_churn() {
    const THREADS: u32 = 8;
    const OPS: u32 = 2000;
    let s = scheme();
    // Room for ~32 leaves total across 4 shards; 16k admissions churn hard.
    let cache = Arc::new(ShardedNodeCache::lru(
        Arc::clone(&s),
        s.bytes_per_point() * POINTS_PER_LEAF * 32,
        4,
    ));
    thread::scope(|scope| {
        for t in 0..THREADS {
            let cache = Arc::clone(&cache);
            scope.spawn(move || {
                for i in 0..OPS {
                    let leaf = (t * OPS + i) % 512;
                    admit(cache.as_ref(), leaf);
                    match cache.lookup(&leaf_points(leaf)[0], leaf) {
                        NodeLookup::Miss | NodeLookup::Exact => {}
                        NodeLookup::Bounds(b) => {
                            for db in &b {
                                assert!(db.lb.is_finite() && db.ub.is_finite(), "torn bounds");
                                assert!(db.lb <= db.ub + 1e-9, "lb {} > ub {}", db.lb, db.ub);
                            }
                        }
                    }
                }
            });
        }
    });
    for (shard, (used, cap)) in cache.shard_occupancy().iter().enumerate() {
        assert!(used <= cap, "shard {shard} over budget: {used} > {cap}");
    }
    assert!(cache.used_bytes() <= cache.capacity_bytes());
}

/// The sharded cache is a pure partition of `LruNodeCache`: for the same
/// resident leaves, a concurrent lookup returns bit-identical bounds to a
/// single-threaded oracle holding the same contents.
#[test]
fn concurrent_lookups_equal_single_threaded_oracle() {
    const LEAVES: u32 = 128;
    let s = scheme();
    let budget = s.bytes_per_point() * POINTS_PER_LEAF * LEAVES as usize * 2;
    let sharded = Arc::new(ShardedNodeCache::lru(Arc::clone(&s), budget, 8));

    // Populate the sharded cache from 4 threads, the oracle serially.
    thread::scope(|scope| {
        for t in 0..4u32 {
            let sharded = Arc::clone(&sharded);
            scope.spawn(move || {
                for leaf in (t..LEAVES).step_by(4) {
                    admit(sharded.as_ref(), leaf);
                }
            });
        }
    });

    let queries: Vec<Vec<f32>> = (0..16)
        .map(|q| leaf_points(q * 37 + 5)[0].clone())
        .collect();
    thread::scope(|scope| {
        for q in &queries {
            let sharded = Arc::clone(&sharded);
            let s = Arc::clone(&s);
            scope.spawn(move || {
                // Each thread re-derives the oracle itself: the compact
                // encoding is deterministic, so a fresh single-threaded
                // cache with the same contents is the ground truth.
                let oracle = LruNodeCache::new(Arc::clone(&s), budget);
                for leaf in 0..LEAVES {
                    let pts = leaf_points(leaf);
                    oracle.admit(leaf, &mut pts.iter().map(|p| p.as_slice()));
                }
                for leaf in 0..LEAVES {
                    let want = oracle.lookup(q, leaf);
                    let got = sharded.lookup(q, leaf);
                    assert_eq!(got, want, "leaf {leaf} diverged from the oracle");
                }
            });
        }
    });
}

/// Deterministic op counts from many threads must be exactly accounted for
/// by the labeled per-shard `cache.*` counter series.
#[test]
fn totals_match_labeled_per_shard_counters() {
    const THREADS: u32 = 8;
    const LEAVES: u32 = 64;
    const MISSES_PER_THREAD: u32 = 32;
    let registry = MetricsRegistry::new();
    let s = scheme();
    let cache = Arc::new(ShardedNodeCache::lru(
        Arc::clone(&s),
        s.bytes_per_point() * POINTS_PER_LEAF * LEAVES as usize * 4,
        4,
    ));
    ConcurrentNodeCache::bind_obs(cache.as_ref(), &registry);

    // Phase 1: disjoint admissions — exactly LEAVES insertions in total.
    thread::scope(|scope| {
        for t in 0..4u32 {
            let cache = Arc::clone(&cache);
            scope.spawn(move || {
                for leaf in (t..LEAVES).step_by(4) {
                    admit(cache.as_ref(), leaf);
                }
            });
        }
    });
    // Phase 2: every thread hits each resident leaf once and misses
    // MISSES_PER_THREAD absent leaves once.
    thread::scope(|scope| {
        for t in 0..THREADS {
            let cache = Arc::clone(&cache);
            scope.spawn(move || {
                let q = leaf_points(t)[0].clone();
                for leaf in 0..LEAVES {
                    assert!(!matches!(cache.lookup(&q, leaf), NodeLookup::Miss));
                }
                for leaf in LEAVES..LEAVES + MISSES_PER_THREAD {
                    assert!(matches!(cache.lookup(&q, leaf), NodeLookup::Miss));
                }
            });
        }
    });

    let snap = registry.snapshot();
    assert_eq!(snap.counter_sum("cache.insertions"), LEAVES as u64);
    assert_eq!(
        snap.counter_sum("cache.hits"),
        (THREADS * LEAVES) as u64,
        "every resident-leaf lookup is a hit"
    );
    assert_eq!(
        snap.counter_sum("cache.misses"),
        (THREADS * MISSES_PER_THREAD) as u64,
        "every absent-leaf lookup is a miss"
    );
    let hit_series = snap
        .counters
        .iter()
        .filter(|(id, _)| id.name == "cache.hits")
        .count();
    assert_eq!(hit_series, 4, "one labeled series per shard");
}
