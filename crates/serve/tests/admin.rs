//! Ops-plane integration tests: end-to-end request tracing through
//! [`QueryServer`], SLO feeding, and the admin telemetry endpoint over a
//! real `TcpStream`.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use hc_core::dataset::{Dataset, PointId};
use hc_core::histogram::classic::equi_width;
use hc_core::quantize::Quantizer;
use hc_core::scheme::{ApproxScheme, GlobalScheme};
use hc_index::traits::CandidateIndex;
use hc_obs::{MetricsRegistry, SloConfig, SloMonitor, SloState, TraceOutcome};
use hc_query::SharedParts;
use hc_serve::{QueryOutcome, QueryServer, ServeConfig, ShardedCompactCache, SubmitError};
use hc_storage::point_file::PointFile;

const N: usize = 64;
const DIM: usize = 2;

/// Every query scans everything — deterministic candidates, nonzero I/O.
struct ScanIndex;

impl CandidateIndex for ScanIndex {
    fn candidates(&self, _q: &[f32], _k: usize) -> Vec<PointId> {
        (0..N as u32).map(PointId).collect()
    }

    fn name(&self) -> &'static str {
        "scan"
    }
}

fn dataset() -> Dataset {
    Dataset::from_rows(
        &(0..N)
            .map(|i| vec![i as f32, (i * 3 % N) as f32])
            .collect::<Vec<_>>(),
    )
}

fn parts() -> SharedParts {
    SharedParts::new(Arc::new(ScanIndex), Arc::new(PointFile::new(dataset())))
}

fn scheme() -> Arc<dyn ApproxScheme> {
    let quant = Quantizer::new(0.0, N as f32, 256);
    Arc::new(GlobalScheme::new(equi_width(256, 64), quant, DIM))
}

fn shared_cache() -> Arc<ShardedCompactCache> {
    let s = scheme();
    Arc::new(ShardedCompactCache::lru(
        Arc::clone(&s),
        s.bytes_per_point() * N * 2,
        4,
    ))
}

fn query(i: usize) -> Vec<f32> {
    vec![(i % N) as f32 + 0.25, ((i * 3) % N) as f32 + 0.25]
}

/// Minimal HTTP GET over std TcpStream; returns (status, body).
fn http_get(addr: SocketAddr, path: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect admin");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    write!(stream, "GET {path} HTTP/1.1\r\nHost: localhost\r\n\r\n").expect("request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("response");
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_owned())
        .unwrap_or_default();
    (status, body)
}

#[test]
fn traces_follow_requests_through_their_whole_life() {
    let registry = MetricsRegistry::new();
    let server = QueryServer::start(
        parts(),
        shared_cache(),
        ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        },
        &registry,
    );
    // A normal request, a generously-deadlined request, and an expired one.
    let t0 = server.submit(query(0), 5, None).expect("admitted");
    assert!(matches!(t0.wait(), QueryOutcome::Done(_)));
    let t1 = server
        .submit(query(1), 5, Some(Instant::now() + Duration::from_secs(30)))
        .expect("admitted");
    match t1.wait() {
        QueryOutcome::Done(resp) => {
            let slack = resp.deadline_slack_us.expect("deadline was set");
            assert!(slack > 0, "30s deadline must leave positive slack");
        }
        other => panic!("expected Done, got {other:?}"),
    }
    let t2 = server
        .submit(query(2), 5, Some(Instant::now() - Duration::from_millis(5)))
        .expect("admitted");
    assert!(matches!(t2.wait(), QueryOutcome::TimedOut));

    let traces = registry.traces().to_vec();
    assert_eq!(traces.len(), 3, "one trace per request, recorded once");
    let by_seq = |seq: u64| traces.iter().find(|t| t.seq == seq).expect("trace");
    let done = by_seq(0);
    assert_eq!(done.outcome, TraceOutcome::Done);
    assert_eq!(done.candidates, N as u32);
    assert!(done.total_us > 0);
    assert!(!done.has_deadline);
    assert!(done.worker < 2);
    assert_eq!(done.cache_generation, 0);
    let deadlined = by_seq(1);
    assert!(deadlined.has_deadline);
    assert!(deadlined.deadline_slack_us > 0);
    let expired = by_seq(2);
    assert_eq!(expired.outcome, TraceOutcome::TimedOut);
    assert!(expired.has_deadline);
    assert!(
        expired.deadline_slack_us < 0,
        "expired deadline must show negative slack"
    );
    assert_eq!(expired.candidates, 0, "shed request never ran the engine");
    server.shutdown();
}

#[test]
fn queue_full_rejections_leave_traces_and_burn_the_slo() {
    let registry = MetricsRegistry::new();
    let slo = Arc::new(SloMonitor::new(
        SloConfig {
            availability_target: 0.9,
            fast_window: 4,
            slow_window: 16,
            min_events: 2,
            warn_burn: 1.0,
            critical_burn: 2.0,
            incident_dir: None,
            ..SloConfig::default()
        },
        &registry,
    ));
    let config = ServeConfig {
        workers: 1,
        queue_capacity: 1,
        simulate_io_scale: Some(1.0),
        io_model: hc_storage::io_stats::IoModel::HDD,
        slo: Some(Arc::clone(&slo)),
        ..ServeConfig::default()
    };
    let server = QueryServer::start(parts(), shared_cache(), config, &registry);
    let mut tickets = Vec::new();
    let mut rejected = 0u32;
    for i in 0..12 {
        match server.submit(query(i), 5, None) {
            Ok(t) => tickets.push(t),
            Err(SubmitError::QueueFull) => rejected += 1,
            Err(other) => panic!("unexpected: {other:?}"),
        }
    }
    assert!(rejected > 0, "burst must shed");
    for t in tickets {
        t.wait();
    }
    let traces = registry.traces().to_vec();
    let shed: Vec<_> = traces
        .iter()
        .filter(|t| t.outcome == TraceOutcome::QueueFull)
        .collect();
    assert_eq!(
        shed.len() as u32,
        rejected,
        "every rejection leaves a trace"
    );
    assert!(
        slo.state() > SloState::Healthy,
        "sustained shedding must burn the availability budget, state={:?}",
        slo.state()
    );
    server.shutdown();
}

#[test]
fn admin_endpoint_serves_all_routes() {
    let registry = MetricsRegistry::new();
    registry.event("maint.rebuild", "generation 1");
    let server = QueryServer::start(
        parts(),
        shared_cache(),
        ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        },
        &registry,
    );
    let admin = server.serve_admin("127.0.0.1:0").expect("bind admin");
    let addr = admin.local_addr();
    // Serve some traffic so every surface has content.
    for i in 0..8 {
        let t = server.submit(query(i), 5, None).expect("admitted");
        assert!(matches!(t.wait(), QueryOutcome::Done(_)));
    }

    let (status, body) = http_get(addr, "/metrics");
    assert_eq!(status, 200);
    assert!(body.contains("# TYPE serve_completed counter"));
    assert!(body.contains("serve_completed 8"));
    assert!(
        body.contains("query_count{series=\"worker0\"}")
            || body.contains("query_count{series=\"worker1\"}"),
        "per-worker engine series must be exported:\n{body}"
    );
    assert!(
        !body.contains("}_count"),
        "exposition suffix bug resurfaced"
    );

    let (status, body) = http_get(addr, "/metrics.json");
    assert_eq!(status, 200);
    assert!(body.contains("\"name\":\"serve.completed\",\"value\":8"));
    assert!(body.contains("\"slow_queries\":[{\"seq\":"));
    assert!(body.contains("\"events\":[{\"at_us\":"));

    let (status, body) = http_get(addr, "/healthz");
    assert_eq!(status, 200);
    assert!(body.contains("\"status\":\"healthy\""));
    assert!(body.contains("\"monitored\":false"));

    let (status, body) = http_get(addr, "/tracez");
    assert_eq!(status, 200);
    assert!(body.contains("\"slowest\":[{\"seq\":"));
    assert!(body.contains("\"outcome\":\"done\""));
    assert!(body.contains("\"degraded\":[]"));

    let (status, body) = http_get(addr, "/statusz");
    assert_eq!(status, 200);
    assert!(body.contains("\"workers\":2"));
    assert!(body.contains("\"cache_generation\":0"));
    assert!(body.contains("\"slo_state\":\"unmonitored\""));
    assert!(body.contains("\"kind\":\"maint.rebuild\""));

    let (status, body) = http_get(addr, "/nope");
    assert_eq!(status, 404);
    assert!(body.contains("\"routes\""));

    admin.shutdown();
    server.shutdown();
}

#[test]
fn healthz_flips_to_503_on_critical_and_recovers() {
    let registry = MetricsRegistry::new();
    let incident_dir =
        std::env::temp_dir().join(format!("hc-admin-healthz-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&incident_dir);
    let slo = Arc::new(SloMonitor::new(
        SloConfig {
            availability_target: 0.9,
            exactness_target: 0.9,
            fast_window: 8,
            slow_window: 16,
            min_events: 4,
            warn_burn: 1.0,
            critical_burn: 2.0,
            incident_dir: Some(incident_dir.clone()),
            ..SloConfig::default()
        },
        &registry,
    ));
    let server = QueryServer::start(
        parts(),
        shared_cache(),
        ServeConfig {
            workers: 1,
            slo: Some(Arc::clone(&slo)),
            ..ServeConfig::default()
        },
        &registry,
    );
    let admin = server.serve_admin("127.0.0.1:0").expect("bind admin");
    let addr = admin.local_addr();

    // Healthy first.
    for i in 0..8 {
        server.submit(query(i), 5, None).expect("ok").wait();
    }
    let (status, _) = http_get(addr, "/healthz");
    assert_eq!(status, 200);

    // Burn availability: submit with already-expired deadlines — every one
    // is shed by the worker as TimedOut.
    for i in 0..16 {
        let t = server
            .submit(query(i), 5, Some(Instant::now() - Duration::from_millis(1)))
            .expect("admitted");
        assert!(matches!(t.wait(), QueryOutcome::TimedOut));
    }
    let (status, body) = http_get(addr, "/healthz");
    assert_eq!(status, 503, "Critical must flip the status code: {body}");
    assert!(body.contains("\"status\":\"critical\""));
    let incident = slo.last_incident_path().expect("incident recorded");
    assert!(incident.exists(), "flight recorder must write the incident");
    let incident_body = std::fs::read_to_string(&incident).expect("readable");
    assert!(incident_body.contains("\"outcome\":\"timed_out\""));

    // Recover: a fast window of clean answers clears the state.
    for i in 0..32 {
        server.submit(query(i), 5, None).expect("ok").wait();
    }
    let (status, body) = http_get(addr, "/healthz");
    assert_eq!(status, 200, "recovery must restore 200: {body}");
    // statusz reflects the arc: transitions recorded as events.
    let (_, statusz) = http_get(addr, "/statusz");
    assert!(statusz.contains("slo.transition"));
    assert!(statusz.contains("slo.incident"));

    admin.shutdown();
    server.shutdown();
    let _ = std::fs::remove_dir_all(&incident_dir);
}
