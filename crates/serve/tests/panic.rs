//! Worker-panic isolation: a request whose evaluation panics must resolve
//! its ticket with [`QueryOutcome::Failed`] (never hang), the worker must
//! respawn its engine and keep serving, and subsequent queries must come
//! back exact. DESIGN.md §10.

use std::sync::Arc;
use std::time::Duration;

use hc_core::dataset::{Dataset, PointId};
use hc_core::histogram::classic::equi_width;
use hc_core::quantize::Quantizer;
use hc_core::scheme::{ApproxScheme, GlobalScheme};
use hc_index::traits::CandidateIndex;
use hc_obs::MetricsRegistry;
use hc_query::SharedParts;
use hc_serve::{QueryOutcome, QueryServer, ServeConfig, ShardedCompactCache};
use hc_storage::point_file::PointFile;

const N: usize = 32;
const DIM: usize = 2;

/// Scans everything, but panics on a poison query (NaN first coordinate) —
/// the stand-in for an index bug or poisoned input slipping past admission.
struct PoisonableIndex;

impl CandidateIndex for PoisonableIndex {
    fn candidates(&self, q: &[f32], _k: usize) -> Vec<PointId> {
        assert!(!q[0].is_nan(), "poison query reached the index");
        (0..N as u32).map(PointId).collect()
    }

    fn name(&self) -> &'static str {
        "poisonable-scan"
    }
}

fn dataset() -> Dataset {
    Dataset::from_rows(
        &(0..N)
            .map(|i| vec![i as f32, (i * 5 % N) as f32])
            .collect::<Vec<_>>(),
    )
}

fn server(workers: usize, registry: &MetricsRegistry) -> QueryServer {
    let parts = SharedParts::new(
        Arc::new(PoisonableIndex),
        Arc::new(PointFile::new(dataset())),
    );
    let quant = Quantizer::new(0.0, N as f32, 256);
    let scheme: Arc<dyn ApproxScheme> =
        Arc::new(GlobalScheme::new(equi_width(256, 64), quant, DIM));
    let cache = Arc::new(ShardedCompactCache::lru(
        Arc::clone(&scheme),
        scheme.bytes_per_point() * N * 2,
        4,
    ));
    QueryServer::start(
        parts,
        cache,
        ServeConfig {
            workers,
            ..ServeConfig::default()
        },
        registry,
    )
}

#[test]
fn panicking_request_fails_its_ticket_and_worker_keeps_serving() {
    let registry = MetricsRegistry::new();
    let srv = server(1, &registry);

    // Sanity: a clean query works.
    let before = srv.submit(vec![3.0, 4.0], 3, None).expect("admitted");
    let QueryOutcome::Done(first) = before.wait() else {
        panic!("clean query must complete exactly");
    };

    // Poison query: the ticket must resolve (Failed), not hang.
    let poison = srv.submit(vec![f32::NAN, 0.0], 3, None).expect("admitted");
    match poison.wait() {
        QueryOutcome::Failed { reason } => {
            assert!(
                reason.contains("poison query"),
                "panic message should surface in the outcome, got: {reason}"
            );
        }
        other => panic!("expected Failed, got {other:?}"),
    }

    // The single worker survived: the same thread answers again, exactly.
    let after = srv.submit(vec![3.0, 4.0], 3, None).expect("admitted");
    let QueryOutcome::Done(second) = after.wait() else {
        panic!("post-panic query must complete exactly");
    };
    assert_eq!(first.ids, second.ids, "post-respawn results diverged");

    let snap = registry.snapshot();
    assert_eq!(snap.counter("serve.worker_panics"), Some(1));
    assert_eq!(snap.counter("serve.worker_respawns"), Some(1));
    assert_eq!(snap.counter("serve.failed"), Some(1));
    srv.shutdown();
}

#[test]
fn every_ticket_resolves_under_a_panic_storm() {
    let registry = MetricsRegistry::new();
    let srv = server(4, &registry);

    // Interleave poison and clean queries; every ticket must terminate.
    let tickets: Vec<_> = (0..40)
        .map(|i| {
            let q = if i % 5 == 0 {
                vec![f32::NAN, 0.0]
            } else {
                vec![(i % N) as f32, 1.0]
            };
            (i, srv.submit(q, 3, None).expect("admitted"))
        })
        .collect();
    let mut failed = 0;
    let mut done = 0;
    for (i, ticket) in tickets {
        match ticket.wait() {
            QueryOutcome::Failed { .. } => {
                assert_eq!(i % 5, 0, "clean query {i} failed");
                failed += 1;
            }
            QueryOutcome::Done(_) => done += 1,
            other => panic!("unexpected outcome for {i}: {other:?}"),
        }
    }
    assert_eq!(failed, 8);
    assert_eq!(done, 32);
    assert_eq!(srv.in_flight(), 0);
    srv.shutdown();
}

#[test]
fn wait_timeout_polls_without_consuming_the_ticket() {
    let registry = MetricsRegistry::new();
    let srv = server(1, &registry);

    // Stall the single worker with a poison-free slow path: simulate_io is
    // off, so instead occupy it with a burst and poll the last ticket.
    let burst: Vec<_> = (0..8)
        .map(|i| srv.submit(vec![i as f32, 2.0], 3, None).expect("admitted"))
        .collect();
    let last = srv.submit(vec![9.0, 2.0], 3, None).expect("admitted");

    // Poll until resolved; each None leaves the ticket usable.
    let mut outcome = None;
    for _ in 0..200 {
        if let Some(got) = last.wait_timeout(Duration::from_millis(25)) {
            outcome = Some(got);
            break;
        }
    }
    assert!(
        matches!(outcome, Some(QueryOutcome::Done(_))),
        "polled ticket must eventually resolve exactly"
    );
    for t in burst {
        assert!(matches!(t.wait(), QueryOutcome::Done(_)));
    }
    srv.shutdown();
}
