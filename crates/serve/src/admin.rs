//! Zero-dependency admin telemetry endpoint.
//!
//! [`QueryServer::serve_admin`] binds a `std::net::TcpListener` and spawns
//! one thread that serves plain HTTP/1.1 (`Connection: close`, one request
//! per connection — an ops plane, not a data plane). Routes:
//!
//! * `GET /metrics` — Prometheus exposition text of the live registry,
//! * `GET /metrics.json` — the same snapshot as JSON (the report schema),
//! * `GET /healthz` — SLO-driven: 200 with `{"status":"healthy"|"warn"}`
//!   while serving is inside budget, **503** with `{"status":"critical"}`
//!   once the burn-rate monitor trips (load balancers eject on status
//!   code, so Critical must change the code, not just the body),
//! * `GET /tracez` — the slowest and most-degraded retained request
//!   traces as JSON,
//! * `GET /statusz` — worker pool state, queue depth, cache generation,
//!   uptime, SLO state and burn rates, and the recent ops event log.
//!
//! The listener is nonblocking with a ~5 ms accept poll so shutdown (drop
//! or [`AdminServer::shutdown`]) is prompt without platform-specific
//! socket tricks. Everything is `std`; no HTTP library exists in this
//! workspace and none is needed for five GET routes.
//!
//! The HTTP plumbing is generic over [`AdminHooks`]: `/metrics`,
//! `/metrics.json`, `/healthz`, and `/tracez` are derived from the hooks'
//! registry and SLO monitor, while `/statusz` delegates to a caller-built
//! closure — so other serving planes (the hc-fleet router) reuse the same
//! endpoint with their own status document via [`serve_admin_hooks`].

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use hc_obs::slo::SloObjective;
use hc_obs::{export, MetricsRegistry, SloMonitor, SloState};

use crate::server::QueryServer;

/// How many traces `/tracez` returns per ranking.
const TRACEZ_LIMIT: usize = 32;

/// What an admin endpoint serves: the registry behind `/metrics`,
/// `/metrics.json`, and `/tracez`, the optional SLO monitor behind
/// `/healthz`, and a closure producing the full `/statusz` JSON body
/// (trailing newline included). [`QueryServer::serve_admin`] builds one
/// from its own worker-pool state; the fleet router builds one with a
/// per-shard status document.
pub struct AdminHooks {
    registry: MetricsRegistry,
    slo: Option<Arc<SloMonitor>>,
    statusz: Box<dyn Fn() -> String + Send + Sync>,
}

impl AdminHooks {
    pub fn new(
        registry: MetricsRegistry,
        slo: Option<Arc<SloMonitor>>,
        statusz: impl Fn() -> String + Send + Sync + 'static,
    ) -> Self {
        Self {
            registry,
            slo,
            statusz: Box::new(statusz),
        }
    }
}

/// Everything the admin thread needs, snapshotted from the [`QueryServer`]
/// at spawn time. Live values (queue depth, in-flight) come through
/// closures so the endpoint reports current state, not start-time state.
struct AdminState {
    registry: MetricsRegistry,
    slo: Option<Arc<SloMonitor>>,
    workers: usize,
    queue_capacity: usize,
    started: Instant,
    queue_depth: Box<dyn Fn() -> usize + Send + Sync>,
    in_flight: Box<dyn Fn() -> usize + Send + Sync>,
    accepting: Box<dyn Fn() -> bool + Send + Sync>,
    cache_generation: Box<dyn Fn() -> u64 + Send + Sync>,
    /// Live ingest status, when the server's backend is ingest-backed
    /// (`None` for the frozen point/tree backends).
    ingest_status: Option<Box<dyn Fn() -> hc_ingest::IngestStatus + Send + Sync>>,
}

/// A running admin endpoint. Dropping it (or calling
/// [`AdminServer::shutdown`]) stops the accept loop and joins the thread.
pub struct AdminServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    join: Option<JoinHandle<()>>,
}

impl AdminServer {
    /// The address actually bound — with port 0 this is where the
    /// ephemeral port landed.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting and join the admin thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

impl Drop for AdminServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

impl QueryServer {
    /// Bind `addr` (use `127.0.0.1:0` for an ephemeral port) and serve the
    /// admin routes over it until the returned handle is dropped. The
    /// endpoint holds clones/closures only — it never blocks serving, and
    /// it keeps answering while the query path is saturated (its whole
    /// point is visibility *during* incidents).
    pub fn serve_admin<A: ToSocketAddrs>(&self, addr: A) -> std::io::Result<AdminServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let state = AdminState {
            registry: self.registry().clone(),
            slo: self.slo().cloned(),
            workers: self.worker_count(),
            queue_capacity: self.queue_capacity(),
            started: Instant::now() - self.uptime(),
            queue_depth: {
                let s = self.queue_handle();
                Box::new(move || s.len())
            },
            in_flight: {
                let s = self.in_flight_handle();
                Box::new(move || s.load(Ordering::Acquire))
            },
            accepting: {
                let s = self.accepting_handle();
                Box::new(move || s.load(Ordering::Acquire))
            },
            cache_generation: {
                let s = self.cache_generation_handle();
                Box::new(move || s())
            },
            ingest_status: self.ingest_engine().map(|engine| {
                let engine = Arc::clone(engine);
                Box::new(move || engine.status()) as Box<dyn Fn() -> _ + Send + Sync>
            }),
        };
        let hooks = AdminHooks::new(self.registry().clone(), self.slo().cloned(), move || {
            statusz(&state)
        });
        serve_admin_bound(listener, local, hooks)
    }
}

/// Bind `addr` and serve the admin routes for an arbitrary plane described
/// by `hooks` until the returned handle is dropped. This is the same
/// endpoint [`QueryServer::serve_admin`] runs — nonblocking accept loop,
/// one request per connection — with the `/statusz` document supplied by
/// the caller.
pub fn serve_admin_hooks<A: ToSocketAddrs>(
    addr: A,
    hooks: AdminHooks,
) -> std::io::Result<AdminServer> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let local = listener.local_addr()?;
    serve_admin_bound(listener, local, hooks)
}

fn serve_admin_bound(
    listener: TcpListener,
    local: SocketAddr,
    hooks: AdminHooks,
) -> std::io::Result<AdminServer> {
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = Arc::clone(&stop);
    let join = std::thread::Builder::new()
        .name("hc-admin".into())
        .spawn(move || accept_loop(listener, hooks, stop_flag))?;
    Ok(AdminServer {
        addr: local,
        stop,
        join: Some(join),
    })
}

fn accept_loop(listener: TcpListener, state: AdminHooks, stop: Arc<AtomicBool>) {
    while !stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _)) => {
                // Serve inline: admin traffic is a human or a probe, one
                // request at a time; a hung client can stall it at most
                // the read timeout.
                let _ = handle_connection(stream, &state);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

/// Read the request line (plus whatever headers arrive with it) and route.
fn handle_connection(mut stream: TcpStream, state: &AdminHooks) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    let mut buf = [0u8; 2048];
    let mut filled = 0;
    // Read until the request line is complete (first CRLF); ignore the
    // rest — every route is a bare GET.
    loop {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => {
                filled += n;
                if buf[..filled].windows(2).any(|w| w == b"\r\n") || filled == buf.len() {
                    break;
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => break,
            Err(e) => return Err(e),
        }
    }
    let request_line = String::from_utf8_lossy(&buf[..filled]);
    let request_line = request_line.lines().next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let (status, content_type, body) = if method != "GET" {
        (
            405,
            "application/json",
            "{\"error\":\"method not allowed\"}\n".to_owned(),
        )
    } else {
        route(path, state)
    };
    write_response(&mut stream, status, content_type, &body)
}

fn route(path: &str, state: &AdminHooks) -> (u16, &'static str, String) {
    // Strip any query string; routes take none.
    let path = path.split('?').next().unwrap_or(path);
    match path {
        "/metrics" => (
            200,
            "text/plain; version=0.0.4",
            export::to_prometheus(&state.registry.snapshot()),
        ),
        "/metrics.json" => (
            200,
            "application/json",
            export::to_json(&state.registry.snapshot(), TRACEZ_LIMIT),
        ),
        "/healthz" => healthz(state),
        "/tracez" => (200, "application/json", tracez(state)),
        "/statusz" => (200, "application/json", (state.statusz)()),
        _ => (
            404,
            "application/json",
            "{\"error\":\"not found\",\"routes\":[\"/metrics\",\"/metrics.json\",\"/healthz\",\"/tracez\",\"/statusz\"]}\n"
                .to_owned(),
        ),
    }
}

fn healthz(state: &AdminHooks) -> (u16, &'static str, String) {
    let slo_state = state
        .slo
        .as_ref()
        .map(|m| m.state())
        .unwrap_or(SloState::Healthy);
    // Load balancers act on the status code: Critical must flip it.
    let status = match slo_state {
        SloState::Critical => 503,
        SloState::Healthy | SloState::Warn => 200,
    };
    let monitored = state.slo.is_some();
    let incidents = state.slo.as_ref().map(|m| m.incidents()).unwrap_or(0);
    (
        status,
        "application/json",
        format!(
            "{{\"status\":\"{}\",\"monitored\":{monitored},\"incidents\":{incidents}}}\n",
            slo_state.as_str()
        ),
    )
}

fn tracez(state: &AdminHooks) -> String {
    let traces = state.registry.traces();
    let slowest = traces.slowest_by(TRACEZ_LIMIT, |t| t.latency_secs());
    let degraded = traces.slowest_by(TRACEZ_LIMIT, |t| {
        // Rank unanswered outcomes above degraded-but-answered, then by
        // how many candidates were lost.
        let base = if t.outcome.is_answered() { 0.0 } else { 1e9 };
        if t.missing > 0 || !t.outcome.is_answered() {
            base + t.missing as f64
        } else {
            f64::MIN
        }
    });
    let degraded: Vec<_> = degraded
        .into_iter()
        .filter(|t| t.missing > 0 || !t.outcome.is_answered())
        .collect();
    format!(
        "{{\"slowest\":{},\"degraded\":{}}}\n",
        export::traces_to_json(&slowest),
        export::traces_to_json(&degraded)
    )
}

fn statusz(state: &AdminState) -> String {
    let (slo_state, burns) = match &state.slo {
        None => ("unmonitored".to_owned(), String::from("[]")),
        Some(m) => {
            let entries: Vec<String> = SloObjective::ALL
                .iter()
                .map(|o| {
                    let b = m.burn_rates(*o);
                    format!(
                        "{{\"objective\":\"{}\",\"fast\":{:.4},\"slow\":{:.4}}}",
                        o.as_str(),
                        b.fast,
                        b.slow
                    )
                })
                .collect();
            (
                m.state().as_str().to_owned(),
                format!("[{}]", entries.join(",")),
            )
        }
    };
    // The ingest section only exists for the live-mutable backend; frozen
    // point/tree servers report `"ingest":null` so probes can distinguish
    // "not ingest-backed" from "ingest-backed but idle".
    let ingest = match &state.ingest_status {
        None => "null".to_owned(),
        Some(status) => {
            let s = status();
            format!(
                "{{\"wal_bytes\":{},\"wal_checkpoint_seq\":{},\"memtable_points\":{},\
                 \"memtable_tombstones\":{},\
                 \"segments\":{},\"segment_rows_live\":{},\"segment_tombstones\":{},\
                 \"manifest_generation\":{},\"seals\":{},\"compactions\":{}}}",
                s.wal_bytes,
                s.wal_checkpoint_seq,
                s.memtable_points,
                s.memtable_tombstones,
                s.segments,
                s.segment_rows_live,
                s.segment_tombstones,
                s.manifest_generation,
                s.seals,
                s.compactions
            )
        }
    };
    format!(
        "{{\"workers\":{},\"queue_capacity\":{},\"queue_depth\":{},\"in_flight\":{},\
         \"accepting\":{},\"cache_generation\":{},\"uptime_secs\":{:.3},\
         \"slo_state\":\"{}\",\"burn_rates\":{},\"ingest\":{},\"events\":{}}}\n",
        state.workers,
        state.queue_capacity,
        (state.queue_depth)(),
        (state.in_flight)(),
        (state.accepting)(),
        (state.cache_generation)(),
        state.started.elapsed().as_secs_f64(),
        slo_state,
        burns,
        ingest,
        export::events_to_json(&state.registry.events().to_vec())
    )
}

fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        404 => "Not Found",
        405 => "Method Not Allowed",
        503 => "Service Unavailable",
        _ => "Unknown",
    };
    let header = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(header.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}
