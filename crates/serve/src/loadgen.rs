//! Load generators for [`QueryServer`]: closed loop (fixed concurrency,
//! each client waits for its answer before sending the next) and open loop
//! (fixed offered rate, arrivals independent of completions — the shape
//! that exposes overload, since a closed loop self-throttles).

use std::sync::Mutex;
use std::thread;
use std::time::{Duration, Instant};

use hc_core::dataset::PointId;

use crate::server::{QueryOutcome, QueryServer, SubmitError, Ticket};

/// What one load-generation run measured.
#[derive(Debug, Default)]
pub struct LoadReport {
    /// Requests the generator tried to submit.
    pub offered: usize,
    /// Requests that came back [`QueryOutcome::Done`].
    pub completed: usize,
    /// Submissions refused at the door (queue full).
    pub rejected: usize,
    /// Admitted requests shed on expired deadline.
    pub timed_out: usize,
    /// Requests answered [`QueryOutcome::Degraded`]: exact over the readable
    /// candidates, with some candidates lost to storage faults. Counted in
    /// `completed` too — a degraded answer is still an answer.
    pub degraded: usize,
    /// Requests that reached a terminal [`QueryOutcome::Failed`] (panic or
    /// shutdown drain).
    pub failed: usize,
    /// First submission to last fulfilment.
    pub wall: Duration,
    /// Per-completed-request latency in µs, sorted ascending (includes
    /// degraded answers).
    pub latencies_us: Vec<u64>,
    /// Per-completed-request time-in-queue in µs, sorted ascending — the
    /// headline numbers quote these so overload shows up as queueing, not
    /// just end-to-end latency.
    pub queue_waits_us: Vec<u64>,
    /// Deadline slack at fulfilment in µs (negative = fulfilled late),
    /// sorted ascending. Only requests submitted with a deadline
    /// contribute.
    pub deadline_slacks_us: Vec<i64>,
    /// `(request index, result ids)` for every *exactly* completed request —
    /// the bench compares these against a single-threaded reference engine.
    /// Degraded answers are kept separately in `degraded_results` so this
    /// comparison stays byte-for-byte.
    pub results: Vec<(usize, Vec<PointId>)>,
    /// `(request index, result ids, missing candidate ids)` for every
    /// degraded request.
    pub degraded_results: Vec<(usize, Vec<PointId>, Vec<PointId>)>,
    /// Total cache hits across completed requests.
    pub cache_hits: u64,
    /// Total candidates across completed requests.
    pub candidates: u64,
}

impl LoadReport {
    /// Completed queries per second of wall time.
    pub fn qps(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.completed as f64 / secs
    }

    /// Fraction of offered load shed (rejected or timed out).
    pub fn shed_rate(&self) -> f64 {
        if self.offered == 0 {
            return 0.0;
        }
        (self.rejected + self.timed_out) as f64 / self.offered as f64
    }

    /// Fraction of offered load that got an answer — exact or degraded.
    /// This is the chaos bench's headline metric: faults may degrade
    /// answers, but availability should hold.
    pub fn availability(&self) -> f64 {
        if self.offered == 0 {
            return 1.0;
        }
        self.completed as f64 / self.offered as f64
    }

    /// Aggregate cache hit ratio over completed requests.
    pub fn hit_ratio(&self) -> f64 {
        if self.candidates == 0 {
            return 0.0;
        }
        self.cache_hits as f64 / self.candidates as f64
    }

    /// Nearest-rank percentile of completed-request latency, in µs.
    pub fn percentile_us(&self, p: f64) -> u64 {
        if self.latencies_us.is_empty() {
            return 0;
        }
        let rank = ((p / 100.0) * self.latencies_us.len() as f64).ceil() as usize;
        self.latencies_us[rank.clamp(1, self.latencies_us.len()) - 1]
    }

    pub fn p50_us(&self) -> u64 {
        self.percentile_us(50.0)
    }

    pub fn p95_us(&self) -> u64 {
        self.percentile_us(95.0)
    }

    pub fn p99_us(&self) -> u64 {
        self.percentile_us(99.0)
    }

    pub fn mean_us(&self) -> f64 {
        if self.latencies_us.is_empty() {
            return 0.0;
        }
        self.latencies_us.iter().sum::<u64>() as f64 / self.latencies_us.len() as f64
    }

    /// Nearest-rank percentile of completed-request queue wait, in µs.
    pub fn queue_wait_percentile_us(&self, p: f64) -> u64 {
        if self.queue_waits_us.is_empty() {
            return 0;
        }
        let rank = ((p / 100.0) * self.queue_waits_us.len() as f64).ceil() as usize;
        self.queue_waits_us[rank.clamp(1, self.queue_waits_us.len()) - 1]
    }

    pub fn queue_wait_p50_us(&self) -> u64 {
        self.queue_wait_percentile_us(50.0)
    }

    pub fn queue_wait_p95_us(&self) -> u64 {
        self.queue_wait_percentile_us(95.0)
    }

    pub fn queue_wait_p99_us(&self) -> u64 {
        self.queue_wait_percentile_us(99.0)
    }

    /// Nearest-rank percentile of deadline slack, in µs. Note slacks sort
    /// ascending, so *low* percentiles are the requests that came closest
    /// to (or past) their deadline.
    pub fn deadline_slack_percentile_us(&self, p: f64) -> i64 {
        if self.deadline_slacks_us.is_empty() {
            return 0;
        }
        let rank = ((p / 100.0) * self.deadline_slacks_us.len() as f64).ceil() as usize;
        self.deadline_slacks_us[rank.clamp(1, self.deadline_slacks_us.len()) - 1]
    }

    /// The 5th-percentile slack — the tail that nearly (or actually)
    /// blew its deadline.
    pub fn deadline_slack_p05_us(&self) -> i64 {
        self.deadline_slack_percentile_us(5.0)
    }

    pub fn deadline_slack_p50_us(&self) -> i64 {
        self.deadline_slack_percentile_us(50.0)
    }

    fn absorb(&mut self, index: usize, outcome: QueryOutcome) {
        match outcome {
            QueryOutcome::Done(resp) => {
                self.completed += 1;
                self.latencies_us.push(resp.latency.as_micros() as u64);
                self.queue_waits_us.push(resp.queue_wait.as_micros() as u64);
                if let Some(slack) = resp.deadline_slack_us {
                    self.deadline_slacks_us.push(slack);
                }
                self.cache_hits += resp.cache_hits as u64;
                self.candidates += resp.candidates as u64;
                self.results.push((index, resp.ids));
            }
            QueryOutcome::Degraded { response, missing } => {
                self.completed += 1;
                self.degraded += 1;
                self.latencies_us.push(response.latency.as_micros() as u64);
                self.queue_waits_us
                    .push(response.queue_wait.as_micros() as u64);
                if let Some(slack) = response.deadline_slack_us {
                    self.deadline_slacks_us.push(slack);
                }
                self.cache_hits += response.cache_hits as u64;
                self.candidates += response.candidates as u64;
                self.degraded_results.push((index, response.ids, missing));
            }
            QueryOutcome::TimedOut => self.timed_out += 1,
            QueryOutcome::Failed { .. } => self.failed += 1,
        }
    }

    fn finish(&mut self, wall: Duration) {
        self.wall = wall;
        self.latencies_us.sort_unstable();
        self.queue_waits_us.sort_unstable();
        self.deadline_slacks_us.sort_unstable();
        self.results.sort_by_key(|(i, _)| *i);
        self.degraded_results.sort_by_key(|(i, _, _)| *i);
    }
}

/// Fixed-concurrency load: `clients` threads round-robin over `queries`
/// (client `c` takes indices `c, c+clients, …`), each submitting its next
/// query only after the previous answer arrives. `deadline` is relative to
/// each submission.
pub fn run_closed_loop(
    server: &QueryServer,
    queries: &[Vec<f32>],
    clients: usize,
    k: usize,
    deadline: Option<Duration>,
) -> LoadReport {
    assert!(clients >= 1);
    let merged = Mutex::new(LoadReport::default());
    let start = Instant::now();
    thread::scope(|scope| {
        for c in 0..clients {
            let merged = &merged;
            scope.spawn(move || {
                let mut local = LoadReport::default();
                for (index, query) in queries.iter().enumerate().skip(c).step_by(clients) {
                    local.offered += 1;
                    let abs_deadline = deadline.map(|d| Instant::now() + d);
                    match server.submit(query.clone(), k, abs_deadline) {
                        Ok(ticket) => local.absorb(index, ticket.wait()),
                        Err(SubmitError::QueueFull) => local.rejected += 1,
                        Err(SubmitError::ShuttingDown) => break,
                    }
                }
                let mut merged = merged.lock().expect("report poisoned");
                merged.offered += local.offered;
                merged.completed += local.completed;
                merged.rejected += local.rejected;
                merged.timed_out += local.timed_out;
                merged.degraded += local.degraded;
                merged.failed += local.failed;
                merged.latencies_us.extend(local.latencies_us);
                merged.queue_waits_us.extend(local.queue_waits_us);
                merged.deadline_slacks_us.extend(local.deadline_slacks_us);
                merged.results.extend(local.results);
                merged.degraded_results.extend(local.degraded_results);
                merged.cache_hits += local.cache_hits;
                merged.candidates += local.candidates;
            });
        }
    });
    let mut report = merged.into_inner().expect("report poisoned");
    report.finish(start.elapsed());
    report
}

/// Fixed offered rate: submissions are paced at `offered_qps` regardless of
/// completions, so when the service rate is exceeded the bounded queue
/// sheds (that is the experiment). Tickets are collected during dispatch
/// and waited on afterwards.
pub fn run_open_loop(
    server: &QueryServer,
    queries: &[Vec<f32>],
    offered_qps: f64,
    k: usize,
    deadline: Option<Duration>,
) -> LoadReport {
    assert!(offered_qps > 0.0);
    let interval = Duration::from_secs_f64(1.0 / offered_qps);
    let mut report = LoadReport::default();
    let mut tickets: Vec<(usize, Ticket)> = Vec::with_capacity(queries.len());
    let start = Instant::now();
    for (index, query) in queries.iter().enumerate() {
        // Pace to the schedule `start + index·interval`, never ahead of it.
        let target = start + interval.mul_f64(index as f64);
        let now = Instant::now();
        if target > now {
            thread::sleep(target - now);
        }
        report.offered += 1;
        let abs_deadline = deadline.map(|d| Instant::now() + d);
        match server.submit(query.clone(), k, abs_deadline) {
            Ok(ticket) => tickets.push((index, ticket)),
            Err(SubmitError::QueueFull) => report.rejected += 1,
            Err(SubmitError::ShuttingDown) => break,
        }
    }
    for (index, ticket) in tickets {
        let outcome = ticket.wait();
        report.absorb(index, outcome);
    }
    report.finish(start.elapsed());
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_on_known_data() {
        let mut r = LoadReport {
            latencies_us: (1..=100).collect(),
            completed: 100,
            offered: 100,
            ..Default::default()
        };
        r.finish(Duration::from_secs(1));
        assert_eq!(r.p50_us(), 50);
        assert_eq!(r.p99_us(), 99);
        assert_eq!(r.percentile_us(100.0), 100);
        assert!((r.qps() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn degraded_answers_count_toward_availability_but_not_exact_results() {
        let mut r = LoadReport {
            offered: 2,
            ..Default::default()
        };
        r.absorb(
            0,
            QueryOutcome::Degraded {
                response: crate::server::QueryResponse {
                    ids: vec![PointId(4)],
                    latency: Duration::from_micros(100),
                    queue_wait: Duration::ZERO,
                    io_pages: 1,
                    cache_hits: 0,
                    candidates: 2,
                    deadline_slack_us: None,
                },
                missing: vec![PointId(9)],
            },
        );
        r.absorb(
            1,
            QueryOutcome::Failed {
                reason: "boom".into(),
            },
        );
        assert_eq!(r.completed, 1);
        assert_eq!(r.degraded, 1);
        assert_eq!(r.failed, 1);
        assert!(
            r.results.is_empty(),
            "degraded ids stay out of exact results"
        );
        assert_eq!(r.degraded_results.len(), 1);
        assert!((r.availability() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn queue_wait_and_deadline_slack_percentiles() {
        let mut r = LoadReport::default();
        for i in 0..10u64 {
            r.offered += 1;
            r.absorb(
                i as usize,
                QueryOutcome::Done(crate::server::QueryResponse {
                    ids: vec![],
                    latency: Duration::from_micros(100 + i),
                    queue_wait: Duration::from_micros(10 * (i + 1)),
                    io_pages: 0,
                    cache_hits: 0,
                    candidates: 0,
                    deadline_slack_us: Some(i as i64 * 100 - 300),
                }),
            );
        }
        r.finish(Duration::from_secs(1));
        assert_eq!(r.queue_wait_p50_us(), 50);
        assert_eq!(r.queue_wait_percentile_us(100.0), 100);
        // Slacks run -300..600 step 100; p05 lands on the worst (most
        // negative) slack, the near-deadline tail.
        assert_eq!(r.deadline_slack_p05_us(), -300);
        assert_eq!(r.deadline_slack_p50_us(), 100);
    }

    #[test]
    fn shed_rate_counts_rejections_and_timeouts() {
        let r = LoadReport {
            offered: 10,
            completed: 6,
            rejected: 3,
            timed_out: 1,
            ..Default::default()
        };
        assert!((r.shed_rate() - 0.4).abs() < 1e-9);
    }
}
