//! # hc-serve
//!
//! The serving layer: many concurrent queries exploiting one shared compact
//! cache. Everything below is std-only (threads, mutexes, condvars — no
//! external runtime), in three layers:
//!
//! * [`cache::ShardedCompactCache`] — N power-of-two shards keyed by
//!   `PointId`, each shard a `Mutex` around the paper's bit-packed
//!   [`hc_cache::point::CompactPointCache`] with its own LRU list and its
//!   own labeled `CacheObs` series. Implements
//!   [`hc_cache::concurrent::ConcurrentPointCache`], the `&self` /
//!   `Send + Sync` cache trait.
//! * [`server::QueryServer`] — a pool of worker threads, each running its
//!   own `KnnEngine` over `Arc`-shared index/storage
//!   ([`hc_query::SharedParts`]) and the one shared cache, fed by a
//!   [`queue::BoundedQueue`] with admission control: configurable capacity,
//!   per-request deadlines, shed-on-full (`Rejected`) and shed-on-expired
//!   (`TimedOut`) so overload degrades into explicit errors instead of
//!   unbounded latency.
//! * [`loadgen`] — closed-loop (fixed concurrency) and open-loop (fixed
//!   offered rate) load generators producing throughput / p50 / p95 / p99 /
//!   shed-rate reports; the `serve_scale` bench binary sweeps worker count
//!   and offered load with them.
//!
//! Why sharding is cheap here: a compact cache item is `⌈d·τ/64⌉` packed
//! words (Theorem 1), so splitting one budget into N shards leaves every
//! shard with thousands of items — per-shard hit ratios stay close to the
//! unsharded cache while the mutexes never serialize two different shards.
//! See DESIGN.md §"Serving layer".

pub mod admin;
pub mod cache;
pub mod loadgen;
pub mod node_cache;
pub mod queue;
pub mod sampler;
pub mod server;

pub use admin::{serve_admin_hooks, AdminHooks, AdminServer};
pub use cache::ShardedCompactCache;
pub use loadgen::{run_closed_loop, run_open_loop, LoadReport};
pub use node_cache::ShardedNodeCache;
pub use queue::{BoundedQueue, PushError};
pub use sampler::QuerySampler;
pub use server::{QueryOutcome, QueryResponse, QueryServer, ServeConfig, SubmitError, Ticket};
