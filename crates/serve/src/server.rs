//! The concurrent query server: worker threads over shared parts.
//!
//! Every worker owns a full [`KnnEngine`] (its own scratch, its own labeled
//! `query.*` metric series) but all engines share the same `Arc`'d index,
//! point file, and [`ConcurrentPointCache`] — so a point admitted by worker
//! 0 serves bound-hits to worker 3. Requests flow through a
//! [`BoundedQueue`]; admission control turns overload into explicit
//! [`SubmitError::QueueFull`] / [`QueryOutcome::TimedOut`] outcomes rather
//! than unbounded queueing.
//!
//! Correctness under concurrency is inherited from Algorithm 1: the cache
//! only supplies distance *bounds* over the candidate set, so whatever mix
//! of admissions the workers interleave, each query's result ids equal the
//! single-threaded engine's (same index, same candidates, same exact
//! refinement) — only the I/O spent getting there varies.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use hc_cache::concurrent::{ConcurrentPointCache, SharedPointCache};
use hc_core::dataset::PointId;
use hc_obs::{Counter, Gauge, Histogram, MetricsRegistry};
use hc_query::SharedParts;
use hc_storage::io_stats::IoModel;

use crate::queue::{BoundedQueue, PushError};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads, each with its own engine.
    pub workers: usize,
    /// Bounded admission queue capacity; pushes beyond it are shed.
    pub queue_capacity: usize,
    /// Latency model for the modeled refinement time reported per query.
    pub io_model: IoModel,
    /// When set, each worker *sleeps* `io_model.modeled_time(io_pages)`
    /// scaled by this factor after finishing a query, emulating the blocking
    /// disk wait of a real deployment. This is what makes multi-worker
    /// throughput scale even on a single core: threads overlap their
    /// simulated I/O stalls exactly as real threads overlap real disk waits.
    pub simulate_io_scale: Option<f64>,
    /// Enable the footnote-6 eager refetch in every worker engine.
    pub eager_refetch: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            queue_capacity: 64,
            io_model: IoModel::SSD,
            simulate_io_scale: None,
            eager_refetch: false,
        }
    }
}

/// What the worker hands back through the ticket.
#[derive(Debug, Clone)]
pub struct QueryResponse {
    /// The k nearest candidate ids (Algorithm 1 output).
    pub ids: Vec<PointId>,
    /// Submit-to-fulfil wall time (includes queue wait and simulated I/O).
    pub latency: Duration,
    /// Time spent queued before a worker picked the request up.
    pub queue_wait: Duration,
    /// Pages fetched during refinement.
    pub io_pages: u64,
    /// Candidates answered from the shared cache.
    pub cache_hits: usize,
    /// `|C(q)|` for this query.
    pub candidates: usize,
}

/// Terminal state of an admitted request.
#[derive(Debug, Clone)]
pub enum QueryOutcome {
    Done(QueryResponse),
    /// The deadline passed while the request sat in the queue; it was shed
    /// without running.
    TimedOut,
}

/// Why a submission was refused at the door.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// Queue at capacity — the request was shed (the paper's bounded-cache
    /// discipline applied to admission: overload costs rejections, not
    /// memory).
    QueueFull,
    /// [`QueryServer::shutdown`] already began.
    ShuttingDown,
}

/// One-shot response slot: worker fulfils, submitter waits.
struct ResponseSlot {
    state: Mutex<Option<QueryOutcome>>,
    cv: Condvar,
}

impl ResponseSlot {
    fn new() -> Self {
        Self {
            state: Mutex::new(None),
            cv: Condvar::new(),
        }
    }

    fn fulfil(&self, outcome: QueryOutcome) {
        let mut state = self.state.lock().expect("slot poisoned");
        *state = Some(outcome);
        drop(state);
        self.cv.notify_all();
    }

    fn wait(&self) -> QueryOutcome {
        let mut state = self.state.lock().expect("slot poisoned");
        loop {
            if let Some(outcome) = state.take() {
                return outcome;
            }
            state = self.cv.wait(state).expect("slot poisoned");
        }
    }
}

/// Handle to one in-flight query; consume it with [`Ticket::wait`].
pub struct Ticket {
    slot: Arc<ResponseSlot>,
}

impl Ticket {
    /// Block until the worker fulfils (or sheds) the request.
    pub fn wait(self) -> QueryOutcome {
        self.slot.wait()
    }
}

struct QueryRequest {
    query: Vec<f32>,
    k: usize,
    /// Shed (TimedOut) if a worker picks this up after the deadline.
    deadline: Option<Instant>,
    submitted: Instant,
    slot: Arc<ResponseSlot>,
}

/// Serving-layer metric handles (all no-ops on a disabled registry).
struct ServeObs {
    submitted: Counter,
    completed: Counter,
    rejected: Counter,
    timed_out: Counter,
    queue_depth: Gauge,
    latency_us: Histogram,
    queue_wait_us: Histogram,
}

impl ServeObs {
    fn bind(registry: &MetricsRegistry) -> Self {
        Self {
            submitted: registry.counter("serve.submitted"),
            completed: registry.counter("serve.completed"),
            rejected: registry.counter("serve.rejected"),
            timed_out: registry.counter("serve.timed_out"),
            queue_depth: registry.gauge("serve.queue_depth"),
            latency_us: registry.histogram("serve.latency_us"),
            queue_wait_us: registry.histogram("serve.queue_wait_us"),
        }
    }
}

/// A running pool of query workers over one shared cache.
pub struct QueryServer {
    queue: Arc<BoundedQueue<QueryRequest>>,
    workers: Vec<JoinHandle<()>>,
    in_flight: Arc<AtomicUsize>,
    obs: Arc<ServeObs>,
    accepting: Arc<std::sync::atomic::AtomicBool>,
}

impl QueryServer {
    /// Spawn `config.workers` threads. The shared cache's observability is
    /// bound once, centrally (per-shard labels); each worker additionally
    /// binds its own `worker{i}`-labeled `query.*` series.
    pub fn start(
        parts: SharedParts,
        cache: Arc<dyn ConcurrentPointCache>,
        config: ServeConfig,
        registry: &MetricsRegistry,
    ) -> Self {
        assert!(config.workers >= 1, "need at least one worker");
        cache.bind_obs(registry);
        parts.file.stats().bind(registry);

        let queue = Arc::new(BoundedQueue::new(config.queue_capacity));
        let in_flight = Arc::new(AtomicUsize::new(0));
        let obs = Arc::new(ServeObs::bind(registry));

        let workers = (0..config.workers)
            .map(|i| {
                let queue = Arc::clone(&queue);
                let in_flight = Arc::clone(&in_flight);
                let obs = Arc::clone(&obs);
                let parts = parts.clone();
                let cache = SharedPointCache::new(Arc::clone(&cache));
                let registry = registry.clone();
                let config = config.clone();
                thread::Builder::new()
                    .name(format!("hc-serve-worker{i}"))
                    .spawn(move || {
                        worker_loop(i, queue, in_flight, obs, parts, cache, registry, config)
                    })
                    .expect("spawn worker")
            })
            .collect();

        Self {
            queue,
            workers,
            in_flight,
            obs,
            accepting: Arc::new(std::sync::atomic::AtomicBool::new(true)),
        }
    }

    /// Admit a query. Non-blocking: a full queue sheds the request
    /// immediately. `deadline` (absolute) sheds it later if still queued
    /// when a worker gets to it.
    pub fn submit(
        &self,
        query: Vec<f32>,
        k: usize,
        deadline: Option<Instant>,
    ) -> Result<Ticket, SubmitError> {
        if !self.accepting.load(Ordering::Acquire) {
            return Err(SubmitError::ShuttingDown);
        }
        let slot = Arc::new(ResponseSlot::new());
        let request = QueryRequest {
            query,
            k,
            deadline,
            submitted: Instant::now(),
            slot: Arc::clone(&slot),
        };
        self.in_flight.fetch_add(1, Ordering::AcqRel);
        match self.queue.try_push(request) {
            Ok(()) => {
                self.obs.submitted.inc();
                self.obs.queue_depth.set(self.queue.len() as f64);
                Ok(Ticket { slot })
            }
            Err(PushError::Full(_)) => {
                self.in_flight.fetch_sub(1, Ordering::AcqRel);
                self.obs.rejected.inc();
                Err(SubmitError::QueueFull)
            }
            Err(PushError::Closed(_)) => {
                self.in_flight.fetch_sub(1, Ordering::AcqRel);
                Err(SubmitError::ShuttingDown)
            }
        }
    }

    /// Requests admitted but not yet fulfilled.
    pub fn in_flight(&self) -> usize {
        self.in_flight.load(Ordering::Acquire)
    }

    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// Stop admissions, drain the queue, and join every worker. All
    /// already-admitted requests are fulfilled (run or timed out) before
    /// this returns, so `in_flight` is zero afterwards.
    pub fn shutdown(mut self) {
        self.accepting.store(false, Ordering::Release);
        self.queue.close();
        for handle in self.workers.drain(..) {
            handle.join().expect("worker panicked");
        }
        debug_assert_eq!(self.in_flight.load(Ordering::Acquire), 0);
    }
}

impl Drop for QueryServer {
    fn drop(&mut self) {
        // Belt-and-braces for tests that forget shutdown(): close and join.
        self.accepting.store(false, Ordering::Release);
        self.queue.close();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn worker_loop(
    worker_id: usize,
    queue: Arc<BoundedQueue<QueryRequest>>,
    in_flight: Arc<AtomicUsize>,
    obs: Arc<ServeObs>,
    parts: SharedParts,
    cache: SharedPointCache,
    registry: MetricsRegistry,
    config: ServeConfig,
) {
    let mut engine = parts.engine(Box::new(cache));
    engine.io_model = config.io_model;
    engine.eager_refetch = config.eager_refetch;
    engine.obs = hc_query::QueryObs::bind_labeled(&registry, &format!("worker{worker_id}"));

    while let Some(request) = queue.pop() {
        obs.queue_depth.set(queue.len() as f64);
        let picked_up = Instant::now();
        if let Some(deadline) = request.deadline {
            if picked_up > deadline {
                obs.timed_out.inc();
                request.slot.fulfil(QueryOutcome::TimedOut);
                in_flight.fetch_sub(1, Ordering::AcqRel);
                continue;
            }
        }
        let (ids, stats) = engine.query(&request.query, request.k);
        if let Some(scale) = config.simulate_io_scale {
            let stall = config.io_model.modeled_time(stats.io_pages).mul_f64(scale);
            if !stall.is_zero() {
                thread::sleep(stall);
            }
        }
        let now = Instant::now();
        let latency = now.duration_since(request.submitted);
        let queue_wait = picked_up.duration_since(request.submitted);
        obs.completed.inc();
        obs.latency_us.record(latency.as_micros() as u64);
        obs.queue_wait_us.record(queue_wait.as_micros() as u64);
        request.slot.fulfil(QueryOutcome::Done(QueryResponse {
            ids,
            latency,
            queue_wait,
            io_pages: stats.io_pages,
            cache_hits: stats.cache_hits,
            candidates: stats.candidates,
        }));
        in_flight.fetch_sub(1, Ordering::AcqRel);
    }
}
