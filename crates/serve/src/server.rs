//! The concurrent query server: worker threads over shared parts.
//!
//! Three backends share one serving shell. [`QueryServer::start`] runs the
//! flat-index path: every worker owns a full [`KnnEngine`] (its own
//! scratch, its own labeled `query.*` metric series) but all engines share
//! the same `Arc`'d index, page store, and [`ConcurrentPointCache`] — so a
//! point admitted by worker 0 serves bound-hits to worker 3.
//! [`QueryServer::start_tree`] runs the tree path instead: workers own
//! [`TreeSearchEngine`]s over [`TreeSharedParts`] and a shared
//! [`ConcurrentNodeCache`] (leaf granularity, §3.6.1), so a leaf fetched by
//! one worker serves exact or compact hits to the rest.
//! [`QueryServer::start_ingest`] serves the live-mutable dataset: workers
//! share one [`IngestEngine`] and every answer is exact over the
//! (memtable ∪ segments − tombstones) set it observed, even while writers
//! keep appending (DESIGN.md §13). Requests flow
//! through a [`BoundedQueue`]; admission control turns overload into
//! explicit [`SubmitError::QueueFull`] / [`QueryOutcome::TimedOut`]
//! outcomes rather than unbounded queueing.
//!
//! Correctness under concurrency is inherited from Algorithm 1: the cache
//! only supplies distance *bounds* over the candidate set, so whatever mix
//! of admissions the workers interleave, each query's result ids equal the
//! single-threaded engine's (same index, same candidates, same exact
//! refinement) — only the I/O spent getting there varies.
//!
//! Failure semantics (DESIGN.md §10): storage faults the engine could not
//! absorb surface as [`QueryOutcome::Degraded`] (the result is the exact
//! top-k of the readable candidates, with the lost ids listed); a panicking
//! request is caught per-request, its ticket fulfilled with
//! [`QueryOutcome::Failed`], and the worker rebuilds its engine and keeps
//! serving. Every admitted ticket terminates — no outcome is silently
//! dropped, even through shutdown.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use hc_cache::concurrent::{
    ConcurrentNodeCache, ConcurrentPointCache, SharedNodeCache, SharedPointCache,
};
use hc_core::dataset::PointId;
use hc_ingest::{IngestEngine, IngestStatus};
use hc_obs::{
    Counter, Gauge, Histogram, MetricsRegistry, RequestTrace, SloMonitor, SloOutcome, TraceOutcome,
};
use hc_query::tree_search::TreeSearchEngine;
use hc_query::{KnnEngine, SharedParts, TreeSharedParts};
use hc_storage::clock::{Clock, RealClock};
use hc_storage::io_stats::IoModel;
use hc_storage::retry::RetryPolicy;

use crate::queue::{BoundedQueue, PushError};
use crate::sampler::QuerySampler;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads, each with its own engine.
    pub workers: usize,
    /// Bounded admission queue capacity; pushes beyond it are shed.
    pub queue_capacity: usize,
    /// Latency model for the modeled refinement time reported per query.
    pub io_model: IoModel,
    /// When set, each worker *sleeps* `io_model.modeled_time(io_pages)`
    /// scaled by this factor after finishing a query, emulating the blocking
    /// disk wait of a real deployment. This is what makes multi-worker
    /// throughput scale even on a single core: threads overlap their
    /// simulated I/O stalls exactly as real threads overlap real disk waits.
    pub simulate_io_scale: Option<f64>,
    /// Enable the footnote-6 eager refetch in every worker engine.
    /// (Point backend only; the tree path has no eager refetch.)
    pub eager_refetch: bool,
    /// Refinement look-ahead depth installed in every worker engine
    /// (DESIGN.md §16): pages of the next `lookahead` lb-ordered candidates
    /// are submitted with each fetch batch. 0 disables batching; results
    /// are identical for every depth.
    pub lookahead: usize,
    /// Storage retry policy installed in every worker engine.
    pub retry: RetryPolicy,
    /// Clock the retry backoff sleeps on. [`RealClock`] in production; tests
    /// inject a [`hc_storage::clock::SimulatedClock`] so fault-heavy sweeps
    /// finish without real stalls.
    pub clock: Arc<dyn Clock>,
    /// When set, every successfully evaluated query (exact or degraded) is
    /// offered to this sampler — the feed for a maintenance daemon's
    /// rebuild window (§3.5). Must be cheap: it runs on the worker thread.
    pub sampler: Option<Arc<dyn QuerySampler>>,
    /// When set, every terminal request outcome (including admission
    /// rejections) feeds this SLO monitor, driving the Healthy/Warn/
    /// Critical state `/healthz` reports and the Critical-transition
    /// flight recorder.
    pub slo: Option<Arc<SloMonitor>>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            queue_capacity: 64,
            io_model: IoModel::SSD,
            simulate_io_scale: None,
            eager_refetch: false,
            lookahead: 0,
            retry: RetryPolicy::default(),
            clock: Arc::new(RealClock),
            sampler: None,
            slo: None,
        }
    }
}

/// What the worker hands back through the ticket.
#[derive(Debug, Clone)]
pub struct QueryResponse {
    /// The k nearest candidate ids (Algorithm 1 output).
    pub ids: Vec<PointId>,
    /// Submit-to-fulfil wall time (includes queue wait and simulated I/O).
    pub latency: Duration,
    /// Time spent queued before a worker picked the request up.
    pub queue_wait: Duration,
    /// Pages fetched during refinement.
    pub io_pages: u64,
    /// Candidates answered from the shared cache.
    pub cache_hits: usize,
    /// `|C(q)|` for this query.
    pub candidates: usize,
    /// Deadline budget remaining at fulfilment, µs (negative if the
    /// answer landed late). `None` when the request had no deadline.
    pub deadline_slack_us: Option<i64>,
}

/// Terminal state of an admitted request. Every ticket resolves to exactly
/// one of these.
#[derive(Debug, Clone)]
pub enum QueryOutcome {
    /// The exact answer: provably the top-k of the candidate set.
    Done(QueryResponse),
    /// Storage faults made some candidates unreadable and their cached
    /// bounds could not prove them irrelevant. `response.ids` is still the
    /// exact top-k of the candidate set minus `missing` — correct over what
    /// was readable, explicitly incomplete about the rest.
    Degraded {
        response: QueryResponse,
        /// Candidate ids lost to unreadable pages.
        missing: Vec<PointId>,
    },
    /// The deadline passed while the request sat in the queue; it was shed
    /// without running.
    TimedOut,
    /// The request could not be answered at all: its evaluation panicked
    /// (the worker caught it and kept serving) or the server shut down with
    /// the request still queued and no worker left to run it.
    Failed { reason: String },
}

/// Why a submission was refused at the door.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// Queue at capacity — the request was shed (the paper's bounded-cache
    /// discipline applied to admission: overload costs rejections, not
    /// memory).
    QueueFull,
    /// [`QueryServer::shutdown`] already began.
    ShuttingDown,
}

/// One-shot response slot: worker fulfils, submitter waits.
struct ResponseSlot {
    state: Mutex<Option<QueryOutcome>>,
    cv: Condvar,
}

impl ResponseSlot {
    fn new() -> Self {
        Self {
            state: Mutex::new(None),
            cv: Condvar::new(),
        }
    }

    fn fulfil(&self, outcome: QueryOutcome) {
        let mut state = self.state.lock().expect("slot poisoned");
        *state = Some(outcome);
        drop(state);
        self.cv.notify_all();
    }

    fn wait(&self) -> QueryOutcome {
        let mut state = self.state.lock().expect("slot poisoned");
        loop {
            if let Some(outcome) = state.take() {
                return outcome;
            }
            state = self.cv.wait(state).expect("slot poisoned");
        }
    }

    fn wait_timeout(&self, timeout: Duration) -> Option<QueryOutcome> {
        let deadline = Instant::now() + timeout;
        let mut state = self.state.lock().expect("slot poisoned");
        loop {
            if let Some(outcome) = state.take() {
                return Some(outcome);
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, _) = self
                .cv
                .wait_timeout(state, deadline - now)
                .expect("slot poisoned");
            state = guard;
        }
    }
}

/// Handle to one in-flight query; consume it with [`Ticket::wait`] or poll
/// it with [`Ticket::wait_timeout`].
pub struct Ticket {
    slot: Arc<ResponseSlot>,
}

impl Ticket {
    /// Block until the worker fulfils (or sheds) the request.
    pub fn wait(self) -> QueryOutcome {
        self.slot.wait()
    }

    /// Block up to `timeout` for the outcome. `None` means the request is
    /// still in flight — the ticket stays valid, so the caller can do other
    /// work and wait again.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<QueryOutcome> {
        self.slot.wait_timeout(timeout)
    }
}

pub(crate) struct QueryRequest {
    /// Server-assigned request sequence number — the trace-ring key.
    seq: u64,
    query: Vec<f32>,
    k: usize,
    /// Shed (TimedOut) if a worker picks this up after the deadline.
    deadline: Option<Instant>,
    submitted: Instant,
    slot: Arc<ResponseSlot>,
}

/// Serving-layer metric handles (all no-ops on a disabled registry).
struct ServeObs {
    submitted: Counter,
    completed: Counter,
    rejected: Counter,
    timed_out: Counter,
    degraded: Counter,
    failed: Counter,
    worker_panics: Counter,
    worker_respawns: Counter,
    queue_depth: Gauge,
    latency_us: Histogram,
    queue_wait_us: Histogram,
}

impl ServeObs {
    fn bind(registry: &MetricsRegistry) -> Self {
        Self {
            submitted: registry.counter("serve.submitted"),
            completed: registry.counter("serve.completed"),
            rejected: registry.counter("serve.rejected"),
            timed_out: registry.counter("serve.timed_out"),
            degraded: registry.counter("serve.degraded"),
            failed: registry.counter("serve.failed"),
            worker_panics: registry.counter("serve.worker_panics"),
            worker_respawns: registry.counter("serve.worker_respawns"),
            queue_depth: registry.gauge("serve.queue_depth"),
            latency_us: registry.histogram("serve.latency_us"),
            queue_wait_us: registry.histogram("serve.queue_wait_us"),
        }
    }
}

/// Which engine family the workers run. Both share the serving shell
/// (queue, tickets, panic isolation, shutdown); they differ only in what a
/// worker builds and what its stats mean.
#[derive(Clone)]
enum Backend {
    /// Flat candidate refinement: [`KnnEngine`] over a shared point cache.
    Point {
        parts: SharedParts,
        cache: Arc<dyn ConcurrentPointCache>,
    },
    /// Tree-index search: [`TreeSearchEngine`] over a shared node cache.
    Tree {
        parts: TreeSharedParts,
        cache: Arc<dyn ConcurrentNodeCache>,
    },
    /// Live-mutable dataset: exact mid-ingest queries against an
    /// [`IngestEngine`] (memtable ∪ sealed segments − tombstones). The
    /// engine is internally synchronized, so workers share one `Arc`
    /// rather than building per-worker state.
    Ingest { engine: Arc<IngestEngine> },
}

/// What a worker extracts from either engine's per-query stats to build the
/// [`QueryResponse`] and the engine-phase half of the request trace. Field
/// meanings per backend:
///
/// * Point: Algorithm 1's own terms — `cache_hits` = candidates answered
///   from the compact cache, `candidates` = `|C(q)|`, phases =
///   gen/reduce/refine.
/// * Tree: mapped onto the same slots — `cache_hits` = exact + compact
///   node-cache hits, `candidates` = leaves considered, `pruned` = leaves
///   skipped by bound ordering, `c_refine` = deferred leaves, `fetched` =
///   leaf fetches, phases = bounds/traverse/deferred.
struct EngineAnswer {
    ids: Vec<PointId>,
    io_pages: u64,
    cache_hits: usize,
    candidates: usize,
    missing: Vec<PointId>,
    pruned: usize,
    true_results: usize,
    c_refine: usize,
    fetched: usize,
    pages_retried: u64,
    fault_excluded: usize,
    gen_ns: u64,
    reduce_ns: u64,
    refine_ns: u64,
    modeled_refine_secs: f64,
}

impl EngineAnswer {
    /// The engine-phase portion of this answer as a [`RequestTrace`]; the
    /// worker layers the lifecycle fields (seq, queue wait, worker id,
    /// cache generation, deadline, outcome) on top.
    fn trace_base(&self) -> RequestTrace {
        RequestTrace {
            candidates: self.candidates.min(u32::MAX as usize) as u32,
            cache_hits: self.cache_hits.min(u32::MAX as usize) as u32,
            pruned: self.pruned.min(u32::MAX as usize) as u32,
            true_results: self.true_results.min(u32::MAX as usize) as u32,
            c_refine: self.c_refine.min(u32::MAX as usize) as u32,
            fetched: self.fetched.min(u32::MAX as usize) as u32,
            io_pages: self.io_pages.min(u32::MAX as u64) as u32,
            pages_retried: self.pages_retried.min(u32::MAX as u64) as u32,
            fault_excluded: self.fault_excluded.min(u32::MAX as usize) as u32,
            missing: self.missing.len().min(u32::MAX as usize) as u32,
            gen_ns: self.gen_ns,
            reduce_ns: self.reduce_ns,
            refine_ns: self.refine_ns,
            modeled_refine_secs: self.modeled_refine_secs,
            ..RequestTrace::default()
        }
    }
}

/// One worker's engine, any backend, behind a uniform `run`.
enum WorkerEngine<'a> {
    Point(KnnEngine<'a>),
    Tree(TreeSearchEngine<'a>),
    Ingest {
        engine: Arc<IngestEngine>,
        io_model: IoModel,
    },
}

fn dur_ns(d: Duration) -> u64 {
    d.as_nanos().min(u64::MAX as u128) as u64
}

impl WorkerEngine<'_> {
    fn run(&mut self, q: &[f32], k: usize) -> EngineAnswer {
        match self {
            WorkerEngine::Point(engine) => {
                let (ids, stats) = engine.query(q, k);
                EngineAnswer {
                    ids,
                    io_pages: stats.io_pages,
                    cache_hits: stats.cache_hits,
                    candidates: stats.candidates,
                    pruned: stats.pruned,
                    true_results: stats.true_results,
                    c_refine: stats.c_refine,
                    fetched: stats.fetched,
                    pages_retried: stats.pages_retried,
                    fault_excluded: stats.fault_excluded,
                    gen_ns: dur_ns(stats.gen_cpu),
                    reduce_ns: dur_ns(stats.reduce_cpu),
                    refine_ns: dur_ns(stats.refine_cpu),
                    modeled_refine_secs: stats.modeled_refine_secs,
                    missing: stats.missing,
                }
            }
            // Ingest: the engine is shared and internally synchronized, so
            // `run` is a plain call. Slot mapping — `cache_hits` = segment
            // candidates answered by the sidecar bounds alone (no I/O, the
            // compact-cache analogue), `candidates` = memtable rows scanned
            // plus segment bound evals, `c_refine` = exact fetches needed,
            // `fault_excluded` = ids lost to unreadable pages. The engine
            // has no internal phase clock, so the whole evaluation is
            // charged to the refine phase.
            WorkerEngine::Ingest { engine, io_model } => {
                let started = Instant::now();
                let answer = engine.query(q, k);
                let elapsed = dur_ns(started.elapsed());
                EngineAnswer {
                    ids: answer.hits.iter().map(|&(_, id)| id).collect(),
                    io_pages: answer.io_pages as u64,
                    cache_hits: answer.pruned,
                    candidates: answer.considered,
                    pruned: answer.pruned,
                    true_results: answer.hits.len(),
                    c_refine: answer.fetched,
                    fetched: answer.fetched,
                    pages_retried: answer.pages_retried as u64,
                    fault_excluded: answer.missing.len(),
                    gen_ns: 0,
                    reduce_ns: 0,
                    refine_ns: elapsed,
                    modeled_refine_secs: io_model
                        .modeled_time(answer.io_pages as u64)
                        .as_secs_f64(),
                    missing: answer.missing,
                }
            }
            WorkerEngine::Tree(engine) => {
                let (results, stats) = engine.query(q, k);
                EngineAnswer {
                    ids: results.into_iter().map(|(id, _)| id).collect(),
                    io_pages: stats.io_pages,
                    cache_hits: stats.exact_hits + stats.compact_hits,
                    candidates: stats.leaves_total,
                    pruned: stats.leaves_total.saturating_sub(stats.leaves_visited),
                    true_results: stats.exact_hits,
                    c_refine: stats.deferred,
                    fetched: stats.leaf_fetches.min(u32::MAX as u64) as usize,
                    pages_retried: stats.pages_retried,
                    fault_excluded: stats.fault_excluded,
                    gen_ns: dur_ns(stats.bounds_cpu),
                    reduce_ns: dur_ns(stats.traverse_cpu),
                    refine_ns: dur_ns(stats.deferred_cpu),
                    modeled_refine_secs: stats.modeled_io_secs,
                    missing: stats.missing,
                }
            }
        }
    }
}

/// A running pool of query workers over one shared cache.
pub struct QueryServer {
    queue: Arc<BoundedQueue<QueryRequest>>,
    workers: Vec<JoinHandle<()>>,
    in_flight: Arc<AtomicUsize>,
    obs: Arc<ServeObs>,
    accepting: Arc<std::sync::atomic::AtomicBool>,
    /// Next request sequence number (trace-ring key).
    seq: Arc<AtomicU64>,
    registry: MetricsRegistry,
    slo: Option<Arc<SloMonitor>>,
    /// Reads the serving cache generation (bumps on hot swap).
    cache_generation: Arc<dyn Fn() -> u64 + Send + Sync>,
    /// The live-mutable engine behind this server, when the backend is
    /// [`Backend::Ingest`] — the admin endpoint reports its status.
    ingest: Option<Arc<IngestEngine>>,
    worker_count: usize,
    queue_capacity: usize,
    started: Instant,
}

impl QueryServer {
    /// Spawn `config.workers` threads. The shared cache's observability is
    /// bound once, centrally (per-shard labels); each worker additionally
    /// binds its own `worker{i}`-labeled `query.*` series.
    pub fn start(
        parts: SharedParts,
        cache: Arc<dyn ConcurrentPointCache>,
        config: ServeConfig,
        registry: &MetricsRegistry,
    ) -> Self {
        cache.bind_obs(registry);
        // Store-level binding: I/O counters, plus `storage.fault.*` when the
        // store is a fault injector.
        parts.file.bind_obs(registry);
        Self::start_backend(Backend::Point { parts, cache }, config, registry)
    }

    /// Spawn `config.workers` threads running [`TreeSearchEngine`]s over the
    /// shared tree parts and one [`ConcurrentNodeCache`] (typically a
    /// [`crate::ShardedNodeCache`]). Leaves fetched by any worker are
    /// admitted into the shared cache and serve every other worker's
    /// lookups; degradation semantics (DESIGN.md §10) are identical to the
    /// point backend — unprovably-missing candidates surface as
    /// [`QueryOutcome::Degraded`].
    pub fn start_tree(
        parts: TreeSharedParts,
        cache: Arc<dyn ConcurrentNodeCache>,
        config: ServeConfig,
        registry: &MetricsRegistry,
    ) -> Self {
        cache.bind_obs(registry);
        parts.file.bind_obs(registry);
        Self::start_backend(Backend::Tree { parts, cache }, config, registry)
    }

    /// Spawn `config.workers` threads serving exact queries against a
    /// live-mutable [`IngestEngine`] (DESIGN.md §13). Writers keep
    /// appending to the WAL and sealing segments while this pool answers;
    /// every answer is exact over whatever (memtable ∪ segments −
    /// tombstones) set the query observed. The "cache generation" reported
    /// in traces and `/statusz` is the manifest generation, which bumps on
    /// every seal and compaction — the ingest analogue of a hot swap.
    pub fn start_ingest(
        engine: Arc<IngestEngine>,
        config: ServeConfig,
        registry: &MetricsRegistry,
    ) -> Self {
        Self::start_backend(Backend::Ingest { engine }, config, registry)
    }

    fn start_backend(backend: Backend, config: ServeConfig, registry: &MetricsRegistry) -> Self {
        assert!(config.workers >= 1, "need at least one worker");
        let queue = Arc::new(BoundedQueue::new(config.queue_capacity));
        let in_flight = Arc::new(AtomicUsize::new(0));
        let obs = Arc::new(ServeObs::bind(registry));
        let cache_generation: Arc<dyn Fn() -> u64 + Send + Sync> = match &backend {
            Backend::Point { cache, .. } => {
                let cache = Arc::clone(cache);
                Arc::new(move || cache.generation())
            }
            Backend::Tree { cache, .. } => {
                let cache = Arc::clone(cache);
                Arc::new(move || cache.generation())
            }
            Backend::Ingest { engine } => {
                let engine = Arc::clone(engine);
                Arc::new(move || engine.manifest_generation())
            }
        };
        let ingest = match &backend {
            Backend::Ingest { engine } => Some(Arc::clone(engine)),
            _ => None,
        };

        let workers = (0..config.workers)
            .map(|i| {
                let queue = Arc::clone(&queue);
                let in_flight = Arc::clone(&in_flight);
                let obs = Arc::clone(&obs);
                let backend = backend.clone();
                let registry = registry.clone();
                let config = config.clone();
                thread::Builder::new()
                    .name(format!("hc-serve-worker{i}"))
                    .spawn(move || worker_loop(i, queue, in_flight, obs, backend, registry, config))
                    .expect("spawn worker")
            })
            .collect();

        Self {
            queue,
            workers,
            in_flight,
            obs,
            accepting: Arc::new(std::sync::atomic::AtomicBool::new(true)),
            seq: Arc::new(AtomicU64::new(0)),
            registry: registry.clone(),
            slo: config.slo.clone(),
            cache_generation,
            ingest,
            worker_count: config.workers,
            queue_capacity: config.queue_capacity,
            started: Instant::now(),
        }
    }

    /// Admit a query. Non-blocking: a full queue sheds the request
    /// immediately. `deadline` (absolute) sheds it later if still queued
    /// when a worker gets to it.
    pub fn submit(
        &self,
        query: Vec<f32>,
        k: usize,
        deadline: Option<Instant>,
    ) -> Result<Ticket, SubmitError> {
        if !self.accepting.load(Ordering::Acquire) {
            return Err(SubmitError::ShuttingDown);
        }
        let slot = Arc::new(ResponseSlot::new());
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let request = QueryRequest {
            seq,
            query,
            k,
            deadline,
            submitted: Instant::now(),
            slot: Arc::clone(&slot),
        };
        self.in_flight.fetch_add(1, Ordering::AcqRel);
        match self.queue.try_push(request) {
            Ok(()) => {
                self.obs.submitted.inc();
                self.obs.queue_depth.set(self.queue.len() as f64);
                Ok(Ticket { slot })
            }
            Err(PushError::Full(_)) => {
                self.in_flight.fetch_sub(1, Ordering::AcqRel);
                self.obs.rejected.inc();
                // A shed request still leaves a trace and burns the
                // availability SLO — admission rejections are exactly the
                // overload signal the monitor exists to catch.
                self.registry.trace(RequestTrace {
                    seq,
                    worker: u32::MAX,
                    has_deadline: deadline.is_some(),
                    outcome: TraceOutcome::QueueFull,
                    ..RequestTrace::default()
                });
                if let Some(slo) = &self.slo {
                    slo.observe(SloOutcome {
                        answered: false,
                        degraded: false,
                        latency_us: 0,
                    });
                }
                Err(SubmitError::QueueFull)
            }
            Err(PushError::Closed(_)) => {
                self.in_flight.fetch_sub(1, Ordering::AcqRel);
                Err(SubmitError::ShuttingDown)
            }
        }
    }

    /// Requests admitted but not yet fulfilled.
    pub fn in_flight(&self) -> usize {
        self.in_flight.load(Ordering::Acquire)
    }

    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// The registry this server reports into.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// The SLO monitor fed by this server, if one was configured.
    pub fn slo(&self) -> Option<&Arc<SloMonitor>> {
        self.slo.as_ref()
    }

    /// Worker threads in the pool.
    pub fn worker_count(&self) -> usize {
        self.worker_count
    }

    /// Admission queue capacity.
    pub fn queue_capacity(&self) -> usize {
        self.queue_capacity
    }

    /// Whether the server is still accepting submissions.
    pub fn is_accepting(&self) -> bool {
        self.accepting.load(Ordering::Acquire)
    }

    /// Time since the server started.
    pub fn uptime(&self) -> Duration {
        self.started.elapsed()
    }

    /// The cache generation currently serving (bumps on hot swap; 0 for
    /// non-swappable caches).
    pub fn cache_generation(&self) -> u64 {
        (self.cache_generation)()
    }

    // Shared handles for the admin endpoint: it outlives no one (its
    // thread stops on drop) but must read live state without borrowing
    // the server.
    pub(crate) fn queue_handle(&self) -> Arc<BoundedQueue<QueryRequest>> {
        Arc::clone(&self.queue)
    }

    pub(crate) fn in_flight_handle(&self) -> Arc<AtomicUsize> {
        Arc::clone(&self.in_flight)
    }

    pub(crate) fn accepting_handle(&self) -> Arc<std::sync::atomic::AtomicBool> {
        Arc::clone(&self.accepting)
    }

    pub(crate) fn cache_generation_handle(&self) -> Arc<dyn Fn() -> u64 + Send + Sync> {
        Arc::clone(&self.cache_generation)
    }

    /// The live-mutable engine behind this server, when it was started
    /// with [`QueryServer::start_ingest`].
    pub fn ingest_engine(&self) -> Option<&Arc<IngestEngine>> {
        self.ingest.as_ref()
    }

    /// A point-in-time ingest status snapshot, when the backend is
    /// ingest-backed. `/statusz` renders this.
    pub fn ingest_status(&self) -> Option<IngestStatus> {
        self.ingest.as_ref().map(|e| e.status())
    }

    /// Fulfil every request still sitting in the (closed) queue with a
    /// terminal [`QueryOutcome::Failed`]. Workers normally drain the queue
    /// themselves during shutdown; this is the backstop that guarantees no
    /// ticket waits forever even if every worker is already gone.
    fn drain_queue(&self) {
        while let Some(request) = self.queue.pop() {
            self.obs.failed.inc();
            self.in_flight.fetch_sub(1, Ordering::AcqRel);
            request.slot.fulfil(QueryOutcome::Failed {
                reason: "server shut down before a worker ran this request".into(),
            });
        }
    }

    /// Stop admissions, drain the queue, and join every worker. All
    /// already-admitted requests reach a terminal outcome (run, timed out,
    /// or failed) before this returns, so `in_flight` is zero afterwards.
    pub fn shutdown(mut self) {
        self.accepting.store(false, Ordering::Release);
        self.queue.close();
        for handle in self.workers.drain(..) {
            handle.join().expect("worker panicked");
        }
        // Workers drained everything; this only fires if a worker thread
        // died outside the per-request catch (should be impossible).
        self.drain_queue();
        debug_assert_eq!(self.in_flight.load(Ordering::Acquire), 0);
    }
}

impl Drop for QueryServer {
    fn drop(&mut self) {
        // Belt-and-braces for tests that forget shutdown(): close, join, and
        // fulfil anything left queued.
        self.accepting.store(false, Ordering::Release);
        self.queue.close();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        self.drain_queue();
    }
}

/// Build one worker's engine over the shared parts. Split out so the worker
/// can rebuild a fresh engine after a caught panic (the old one's internal
/// state — heap, cache admission mid-write — is suspect). The tree engine
/// borrows `node_adapter`, which the worker loop owns so it outlives every
/// rebuild.
fn build_engine<'a>(
    worker_id: usize,
    backend: &'a Backend,
    node_adapter: Option<&'a SharedNodeCache>,
    registry: &MetricsRegistry,
    config: &ServeConfig,
) -> WorkerEngine<'a> {
    match backend {
        Backend::Point { parts, cache } => {
            let mut engine = parts.engine(Box::new(SharedPointCache::new(Arc::clone(cache))));
            engine.io_model = config.io_model;
            engine.eager_refetch = config.eager_refetch;
            engine.lookahead = config.lookahead;
            engine.retry = config.retry;
            engine.clock = Arc::clone(&config.clock);
            // Traces are recorded once, at the serving layer, with full
            // lifecycle context — the engine keeps its histograms but
            // stays out of the ring.
            engine.obs = hc_query::QueryObs::bind_labeled(registry, &format!("worker{worker_id}"))
                .without_traces();
            engine.retry_obs.bind(registry);
            WorkerEngine::Point(engine)
        }
        Backend::Tree { parts, .. } => {
            let adapter = node_adapter.expect("tree backend always builds a node adapter");
            let mut engine = parts
                .engine(adapter)
                .with_retry(config.retry)
                .with_clock(Arc::clone(&config.clock))
                .with_lookahead(config.lookahead);
            engine.io_model = config.io_model;
            engine.bind_obs_labeled(registry, &format!("worker{worker_id}"));
            WorkerEngine::Tree(engine)
        }
        // Ingest: no per-worker state to build — the engine is shared and
        // a "rebuild" after a caught panic is just a fresh Arc clone (all
        // real state lives behind the engine's own locks, which a panicked
        // query cannot poison: it takes no write locks).
        Backend::Ingest { engine } => WorkerEngine::Ingest {
            engine: Arc::clone(engine),
            io_model: config.io_model,
        },
    }
}

fn panic_reason(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "query evaluation panicked".to_string()
    }
}

fn worker_loop(
    worker_id: usize,
    queue: Arc<BoundedQueue<QueryRequest>>,
    in_flight: Arc<AtomicUsize>,
    obs: Arc<ServeObs>,
    backend: Backend,
    registry: MetricsRegistry,
    config: ServeConfig,
) {
    // The tree engine borrows its node cache, so the worker owns the shared
    // adapter here — it survives engine rebuilds after a caught panic.
    let node_adapter = match &backend {
        Backend::Tree { cache, .. } => Some(SharedNodeCache::new(Arc::clone(cache))),
        Backend::Point { .. } | Backend::Ingest { .. } => None,
    };
    let mut engine = build_engine(
        worker_id,
        &backend,
        node_adapter.as_ref(),
        &registry,
        &config,
    );
    let cache_generation = || match &backend {
        Backend::Point { cache, .. } => cache.generation(),
        Backend::Tree { cache, .. } => cache.generation(),
        Backend::Ingest { engine } => engine.manifest_generation(),
    };
    // One trace record and one SLO observation per terminal request — the
    // same one-uncontended-lock-per-request discipline as the ring itself.
    let finish_trace =
        |base: RequestTrace, request: &QueryRequest, picked_up: Instant, outcome: TraceOutcome| {
            let now = Instant::now();
            let slack_us = request
                .deadline
                .map(|d| {
                    if d >= now {
                        d.duration_since(now).as_micros().min(i64::MAX as u128) as i64
                    } else {
                        -(now.duration_since(d).as_micros().min(i64::MAX as u128) as i64)
                    }
                })
                .unwrap_or(0);
            let total_us = now.duration_since(request.submitted).as_micros() as u64;
            registry.trace(RequestTrace {
                seq: request.seq,
                queue_wait_us: picked_up.duration_since(request.submitted).as_micros() as u64,
                total_us,
                worker: worker_id as u32,
                cache_generation: cache_generation(),
                has_deadline: request.deadline.is_some(),
                deadline_slack_us: slack_us,
                outcome,
                ..base
            });
            if let Some(slo) = &config.slo {
                slo.observe(SloOutcome {
                    answered: outcome.is_answered(),
                    degraded: outcome == TraceOutcome::Degraded,
                    latency_us: total_us,
                });
            }
            slack_us
        };

    while let Some(request) = queue.pop() {
        obs.queue_depth.set(queue.len() as f64);
        let picked_up = Instant::now();
        if let Some(deadline) = request.deadline {
            if picked_up > deadline {
                obs.timed_out.inc();
                finish_trace(
                    RequestTrace::default(),
                    &request,
                    picked_up,
                    TraceOutcome::TimedOut,
                );
                // Decrement before fulfilling (here and below): once a ticket
                // resolves, a waiter must never observe this request still
                // counted in `in_flight`.
                in_flight.fetch_sub(1, Ordering::AcqRel);
                request.slot.fulfil(QueryOutcome::TimedOut);
                continue;
            }
        }
        // Isolate the request: a panic inside the engine (poisoned input,
        // index bug) must not take the worker down with queued tickets
        // unfulfilled.
        let evaluated = catch_unwind(AssertUnwindSafe(|| engine.run(&request.query, request.k)));
        let answer = match evaluated {
            Ok(answer) => answer,
            Err(payload) => {
                obs.worker_panics.inc();
                obs.failed.inc();
                finish_trace(
                    RequestTrace::default(),
                    &request,
                    picked_up,
                    TraceOutcome::Failed,
                );
                in_flight.fetch_sub(1, Ordering::AcqRel);
                request.slot.fulfil(QueryOutcome::Failed {
                    reason: panic_reason(payload),
                });
                // The engine that panicked mid-query may hold corrupt
                // scratch state; respawn a fresh one and keep serving.
                engine = build_engine(
                    worker_id,
                    &backend,
                    node_adapter.as_ref(),
                    &registry,
                    &config,
                );
                obs.worker_respawns.inc();
                continue;
            }
        };
        // The query was served — feed it to the maintenance window before
        // fulfilment so a rebuild triggered right after sees it.
        if let Some(sampler) = &config.sampler {
            sampler.observe(&request.query);
        }
        if let Some(scale) = config.simulate_io_scale {
            let stall = config.io_model.modeled_time(answer.io_pages).mul_f64(scale);
            if !stall.is_zero() {
                thread::sleep(stall);
            }
        }
        let now = Instant::now();
        let latency = now.duration_since(request.submitted);
        let queue_wait = picked_up.duration_since(request.submitted);
        obs.completed.inc();
        obs.latency_us.record(latency.as_micros() as u64);
        obs.queue_wait_us.record(queue_wait.as_micros() as u64);
        let trace_outcome = if answer.missing.is_empty() {
            TraceOutcome::Done
        } else {
            TraceOutcome::Degraded
        };
        let slack_us = finish_trace(answer.trace_base(), &request, picked_up, trace_outcome);
        let response = QueryResponse {
            ids: answer.ids,
            latency,
            queue_wait,
            io_pages: answer.io_pages,
            cache_hits: answer.cache_hits,
            candidates: answer.candidates,
            deadline_slack_us: request.deadline.map(|_| slack_us),
        };
        let outcome = if answer.missing.is_empty() {
            QueryOutcome::Done(response)
        } else {
            obs.degraded.inc();
            QueryOutcome::Degraded {
                response,
                missing: answer.missing,
            }
        };
        in_flight.fetch_sub(1, Ordering::AcqRel);
        request.slot.fulfil(outcome);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn response_slot_wait_timeout_expires_then_delivers() {
        let slot = Arc::new(ResponseSlot::new());
        assert!(
            slot.wait_timeout(Duration::from_millis(10)).is_none(),
            "unfulfilled slot must time out"
        );
        let fulfiller = Arc::clone(&slot);
        let t = thread::spawn(move || {
            thread::sleep(Duration::from_millis(20));
            fulfiller.fulfil(QueryOutcome::TimedOut);
        });
        let got = slot.wait_timeout(Duration::from_secs(5));
        t.join().expect("no panic");
        assert!(matches!(got, Some(QueryOutcome::TimedOut)));
    }

    #[test]
    fn panic_reason_extracts_common_payloads() {
        assert_eq!(panic_reason(Box::new("boom")), "boom");
        assert_eq!(panic_reason(Box::new(String::from("kaboom"))), "kaboom");
        assert_eq!(panic_reason(Box::new(42u32)), "query evaluation panicked");
    }
}
