//! The sharded concurrent compact cache.
//!
//! One byte budget `CS`, N = 2^b shards, each shard an independent
//! [`CompactPointCache`] (bit-packed slab + LRU list) behind its own
//! `Mutex`. A `PointId` maps to a shard by multiplicative (Fibonacci)
//! hashing, so consecutive ids — which the paper's permuted point file
//! scatters anyway — spread evenly and two workers only contend when they
//! probe the *same* shard at the same instant.
//!
//! The paper's compact representation is what makes this split essentially
//! free: at τ = 8 bits per dimension an item is 4× smaller than the raw
//! vector, so even `CS/N` bytes per shard holds thousands of items and the
//! per-shard LRU behaves like the global one (the workload's hot set is
//! spread uniformly over shards by the hash).

use std::cell::RefCell;
use std::sync::{Arc, Mutex};

use hc_cache::concurrent::ConcurrentPointCache;
use hc_cache::point::{CacheLookup, CompactPointCache, PointCache, ScanKernel};
use hc_core::dataset::PointId;
use hc_core::scan::QueryTables;
use hc_core::scheme::ApproxScheme;
use hc_obs::MetricsRegistry;

/// N `Mutex<CompactPointCache>` shards under one byte budget.
pub struct ShardedCompactCache {
    shards: Vec<Mutex<CompactPointCache>>,
    /// `32 - log2(num_shards)`; shard = `(id * φ32) >> shard_shift`.
    shard_shift: u32,
    tau: u32,
    /// Kept so batch probes can build the per-query scan tables *once* and
    /// share them across every shard instead of rebuilding under each lock.
    scheme: Arc<dyn ApproxScheme>,
    kernel: ScanKernel,
}

/// Knuth's multiplicative constant: ⌊2^32 / φ⌋.
const FIB_MULT: u32 = 0x9E37_79B9;

impl ShardedCompactCache {
    /// Dynamic LRU cache of `capacity_bytes` split evenly over `num_shards`
    /// (a power of two) shards, probing with the default (blocked) scan
    /// kernel.
    ///
    /// # Panics
    /// Panics if `num_shards` is zero or not a power of two.
    pub fn lru(scheme: Arc<dyn ApproxScheme>, capacity_bytes: usize, num_shards: usize) -> Self {
        Self::lru_with_kernel(scheme, capacity_bytes, num_shards, ScanKernel::default())
    }

    /// [`ShardedCompactCache::lru`] with an explicit scan kernel — the
    /// benches use this to run a scalar-reference cache next to the blocked
    /// one on identical admission streams.
    ///
    /// # Panics
    /// Panics if `num_shards` is zero or not a power of two.
    pub fn lru_with_kernel(
        scheme: Arc<dyn ApproxScheme>,
        capacity_bytes: usize,
        num_shards: usize,
        kernel: ScanKernel,
    ) -> Self {
        assert!(
            num_shards.is_power_of_two(),
            "num_shards must be a power of two, got {num_shards}"
        );
        let per_shard = capacity_bytes / num_shards;
        let tau = scheme.tau();
        let shards = (0..num_shards)
            .map(|_| {
                Mutex::new(CompactPointCache::lru_with_kernel(
                    Arc::clone(&scheme),
                    per_shard,
                    kernel,
                ))
            })
            .collect();
        Self {
            shards,
            shard_shift: 32 - num_shards.trailing_zeros(),
            tau,
            scheme,
            kernel,
        }
    }

    fn shard_of(&self, id: PointId) -> usize {
        if self.shard_shift == 32 {
            return 0; // single shard; a 32-bit shift would be UB
        }
        (id.0.wrapping_mul(FIB_MULT) >> self.shard_shift) as usize
    }

    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Total resident items across shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("shard poisoned").len())
            .sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Offline HFF-style warm fill (§4): admit points in descending
    /// workload-frequency order, stopping per shard once it is at budget so
    /// the hottest points stay resident (a plain `admit` loop through a
    /// full LRU shard would evict them). Already-resident points are
    /// skipped. Returns how many points were newly admitted.
    pub fn warm_fill(&self, dataset: &hc_core::dataset::Dataset, ranking: &[PointId]) -> usize {
        let mut filled = 0;
        for &id in ranking {
            let mut shard = self.shards[self.shard_of(id)]
                .lock()
                .expect("shard poisoned");
            if shard.contains(id) {
                continue;
            }
            let need = shard.scheme().bytes_per_point();
            if shard.used_bytes() + need > shard.capacity_bytes() {
                continue; // shard full of hotter points — keep them
            }
            shard.admit(id, dataset.point(id));
            filled += 1;
        }
        filled
    }

    /// Per-shard `(used_bytes, capacity_bytes)` — the stress tests assert
    /// the budget invariant shard by shard.
    pub fn shard_occupancy(&self) -> Vec<(usize, usize)> {
        self.shards
            .iter()
            .map(|s| {
                let shard = s.lock().expect("shard poisoned");
                (shard.used_bytes(), shard.capacity_bytes())
            })
            .collect()
    }
}

impl ConcurrentPointCache for ShardedCompactCache {
    fn lookup(&self, q: &[f32], id: PointId) -> CacheLookup {
        self.shards[self.shard_of(id)]
            .lock()
            .expect("shard poisoned")
            .lookup(q, id)
    }

    /// Batch probe: one lock acquisition per *shard touched* (not per
    /// candidate), with the per-query scan tables built once out here and
    /// shared read-only by every shard's blocked kernel.
    fn lookup_batch(&self, q: &[f32], ids: &[PointId], out: &mut Vec<CacheLookup>) {
        out.clear();
        out.resize(ids.len(), CacheLookup::Miss);
        // Partition candidate indices by shard, preserving output positions.
        let mut groups: Vec<Vec<u32>> = vec![Vec::new(); self.shards.len()];
        for (i, &id) in ids.iter().enumerate() {
            groups[self.shard_of(id)].push(i as u32);
        }
        // Worker threads are long-lived, so a thread-local table buffer
        // turns the per-query build into a pure refill (no allocations).
        thread_local! {
            static TABLES: RefCell<QueryTables> = RefCell::new(QueryTables::default());
        }
        TABLES.with(|cell| {
            let mut buf = cell.borrow_mut();
            let tables: Option<&QueryTables> = match self.kernel {
                ScanKernel::Blocked(simd) => match self.scheme.scan_intervals() {
                    Some(iv) => {
                        buf.rebuild(q, &iv, simd);
                        Some(&*buf)
                    }
                    None => None,
                },
                ScanKernel::Scalar => None,
            };
            let mut shard_ids: Vec<PointId> = Vec::new();
            let mut shard_out: Vec<CacheLookup> = Vec::new();
            for (s, group) in groups.iter().enumerate() {
                if group.is_empty() {
                    continue;
                }
                shard_ids.clear();
                shard_ids.extend(group.iter().map(|&i| ids[i as usize]));
                self.shards[s]
                    .lock()
                    .expect("shard poisoned")
                    .lookup_batch_with_tables(q, tables, &shard_ids, &mut shard_out);
                for (&i, looked) in group.iter().zip(shard_out.drain(..)) {
                    out[i as usize] = looked;
                }
            }
        });
    }

    fn admit(&self, id: PointId, point: &[f32]) {
        self.shards[self.shard_of(id)]
            .lock()
            .expect("shard poisoned")
            .admit(id, point)
    }

    fn contains(&self, id: PointId) -> bool {
        self.shards[self.shard_of(id)]
            .lock()
            .expect("shard poisoned")
            .contains(id)
    }

    fn used_bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("shard poisoned").used_bytes())
            .sum()
    }

    fn capacity_bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("shard poisoned").capacity_bytes())
            .sum()
    }

    fn label(&self) -> String {
        format!("SHARDED-COMPACT(τ={})/LRU×{}", self.tau, self.shards.len())
    }

    /// Bind each shard under its own label
    /// (`"COMPACT(τ=8)/LRU/shard3"`), so hot-shard skew is visible;
    /// aggregate with `RegistrySnapshot::counter_sum("cache.hits")`.
    fn bind_obs(&self, registry: &MetricsRegistry) {
        for (i, shard) in self.shards.iter().enumerate() {
            let mut shard = shard.lock().expect("shard poisoned");
            let label = format!("{}/shard{i}", shard.label());
            shard.bind_obs_as(registry, &label);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hc_core::histogram::classic::equi_width;
    use hc_core::quantize::Quantizer;
    use hc_core::scheme::GlobalScheme;

    fn scheme(dim: usize) -> Arc<dyn ApproxScheme> {
        let quant = Quantizer::new(0.0, 100.0, 256);
        Arc::new(GlobalScheme::new(equi_width(256, 32), quant, dim))
    }

    fn point(i: u32) -> Vec<f32> {
        vec![i as f32, (i % 7) as f32]
    }

    #[test]
    fn rejects_non_power_of_two_shards() {
        let result = std::panic::catch_unwind(|| ShardedCompactCache::lru(scheme(2), 1 << 12, 3));
        assert!(result.is_err());
    }

    #[test]
    fn single_shard_works() {
        let c = ShardedCompactCache::lru(scheme(2), 1 << 12, 1);
        c.admit(PointId(1), &point(1));
        assert!(c.contains(PointId(1)));
        assert_eq!(c.num_shards(), 1);
    }

    #[test]
    fn admissions_land_in_one_shard_and_lookups_find_them() {
        let c = ShardedCompactCache::lru(scheme(2), 1 << 14, 8);
        for i in 0..100u32 {
            c.admit(PointId(i), &point(i));
        }
        assert_eq!(c.len(), 100);
        for i in 0..100u32 {
            assert!(c.contains(PointId(i)), "id {i} lost");
            match c.lookup(&point(i), PointId(i)) {
                CacheLookup::Bounds(b) => assert!(b.lb <= 1e-6, "self-distance lb {}", b.lb),
                other => panic!("expected bounds, got {other:?}"),
            }
        }
    }

    #[test]
    fn ids_spread_over_shards() {
        let c = ShardedCompactCache::lru(scheme(2), 1 << 16, 8);
        for i in 0..256u32 {
            c.admit(PointId(i), &point(i));
        }
        let occupied = c
            .shard_occupancy()
            .iter()
            .filter(|(used, _)| *used > 0)
            .count();
        assert!(
            occupied >= 6,
            "fibonacci hash left {occupied}/8 shards used"
        );
    }

    #[test]
    fn per_shard_budget_is_respected() {
        let s = scheme(2);
        let per_item = s.bytes_per_point();
        // Room for 4 items per shard across 4 shards.
        let c = ShardedCompactCache::lru(s, per_item * 16, 4);
        for i in 0..500u32 {
            c.admit(PointId(i), &point(i));
        }
        for (used, cap) in c.shard_occupancy() {
            assert!(used <= cap, "shard over budget: {used} > {cap}");
        }
        assert!(c.used_bytes() <= c.capacity_bytes());
        assert!(c.len() <= 16);
    }

    #[test]
    fn per_shard_obs_series_are_labeled() {
        let registry = MetricsRegistry::new();
        let c = ShardedCompactCache::lru(scheme(2), 1 << 14, 4);
        c.bind_obs(&registry);
        c.admit(PointId(3), &point(3));
        let _ = c.lookup(&point(3), PointId(3)); // hit
        let _ = c.lookup(&point(9), PointId(9)); // miss
        let snap = registry.snapshot();
        assert_eq!(snap.counter_sum("cache.hits"), 1);
        assert_eq!(snap.counter_sum("cache.misses"), 1);
        assert_eq!(snap.counter_sum("cache.insertions"), 1);
        let shard_labels = snap
            .counters
            .iter()
            .filter(|(id, _)| id.name == "cache.hits")
            .count();
        assert_eq!(shard_labels, 4, "one series per shard");
    }

    #[test]
    fn label_names_the_configuration() {
        let c = ShardedCompactCache::lru(scheme(2), 1 << 12, 8);
        assert_eq!(c.label(), "SHARDED-COMPACT(τ=5)/LRU×8");
    }

    /// Sharded batch probes must answer exactly like per-id lookups, and a
    /// scalar-kernel cache under the same admissions must agree bit for bit
    /// with the default blocked one.
    #[test]
    fn sharded_batch_matches_per_id_and_scalar_kernel() {
        let blocked = ShardedCompactCache::lru(scheme(2), 1 << 14, 4);
        let scalar =
            ShardedCompactCache::lru_with_kernel(scheme(2), 1 << 14, 4, ScanKernel::Scalar);
        for i in (0..100u32).step_by(3) {
            blocked.admit(PointId(i), &point(i));
            scalar.admit(PointId(i), &point(i));
        }
        let q = [41.5f32, 3.25];
        let ids: Vec<PointId> = (0..100).map(PointId).collect();
        let mut out_b = Vec::new();
        let mut out_s = Vec::new();
        blocked.lookup_batch(&q, &ids, &mut out_b);
        scalar.lookup_batch(&q, &ids, &mut out_s);
        assert_eq!(out_b.len(), ids.len());
        for (i, &id) in ids.iter().enumerate() {
            // Fresh single-shard probes agree with the batch answers. (Probe
            // order touches recency, not values — bounds depend only on the
            // stored codes.)
            let single = blocked.lookup(&q, id);
            match (&out_b[i], &out_s[i], single) {
                (CacheLookup::Miss, CacheLookup::Miss, CacheLookup::Miss) => {}
                (CacheLookup::Bounds(b), CacheLookup::Bounds(s), CacheLookup::Bounds(g)) => {
                    assert_eq!(b.lb.to_bits(), s.lb.to_bits(), "id {id} lb vs scalar");
                    assert_eq!(b.ub.to_bits(), s.ub.to_bits(), "id {id} ub vs scalar");
                    assert_eq!(b.lb.to_bits(), g.lb.to_bits(), "id {id} lb vs single");
                    assert_eq!(b.ub.to_bits(), g.ub.to_bits(), "id {id} ub vs single");
                }
                other => panic!("id {id}: kernels disagree on residency {other:?}"),
            }
        }
    }

    #[test]
    fn warm_fill_keeps_the_hottest_points_resident() {
        use hc_core::dataset::Dataset;
        let s = scheme(2);
        let per_item = s.bytes_per_point();
        let rows: Vec<Vec<f32>> = (0..64u32).map(point).collect();
        let dataset = Dataset::from_rows(&rows);
        // Room for 2 items per shard across 2 shards: 4 of 64 fit.
        let c = ShardedCompactCache::lru(s, per_item * 4, 2);
        let ranking: Vec<PointId> = (0..64).map(PointId).collect();
        let filled = c.warm_fill(&dataset, &ranking);
        assert_eq!(filled, c.len());
        assert!((2..=4).contains(&filled), "filled {filled}");
        // The very hottest id always fits into its empty shard.
        assert!(c.contains(PointId(0)), "rank-0 point must be resident");
        // Tail ids were skipped, not admitted-then-evicted.
        assert!(!c.contains(PointId(63)));
        for (used, cap) in c.shard_occupancy() {
            assert!(used <= cap);
        }
        // Idempotent: a second fill admits nothing new.
        assert_eq!(c.warm_fill(&dataset, &ranking), 0);
    }
}
