//! Served-query sampling hook for maintenance daemons.
//!
//! The §3.5 rebuild loop needs to see what the server actually served:
//! every successfully evaluated query (exact or degraded — both reflect
//! real demand) is offered to the configured [`QuerySampler`]. The trait
//! lives here so `hc-serve` stays ignorant of who listens; `hc-maint`'s
//! `WorkloadSampler` implements it over the sliding window that feeds
//! `CacheMaintainer`.
//!
//! `observe` runs on the worker thread between evaluation and ticket
//! fulfilment, so implementations must be cheap and non-blocking in the
//! common case (push into a bounded window, maybe drop under contention) —
//! a sampler that blocks stalls serving.

/// Receives every successfully served query.
pub trait QuerySampler: Send + Sync + std::fmt::Debug {
    /// Called once per evaluated query with the query vector. Shed
    /// (timed-out), rejected, and panicked requests are *not* observed —
    /// they were never served.
    fn observe(&self, q: &[f32]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[derive(Debug, Default)]
    struct Recorder {
        seen: Mutex<Vec<Vec<f32>>>,
    }

    impl QuerySampler for Recorder {
        fn observe(&self, q: &[f32]) {
            self.seen.lock().expect("lock").push(q.to_vec());
        }
    }

    #[test]
    fn trait_object_is_usable_behind_arc() {
        let recorder = std::sync::Arc::new(Recorder::default());
        let sampler: std::sync::Arc<dyn QuerySampler> = recorder.clone();
        sampler.observe(&[1.0, 2.0]);
        sampler.observe(&[3.0]);
        assert_eq!(
            *recorder.seen.lock().expect("lock"),
            vec![vec![1.0, 2.0], vec![3.0]]
        );
    }
}
