//! The sharded concurrent node cache (leaf granularity).
//!
//! The node-granularity sibling of [`crate::cache::ShardedCompactCache`]:
//! one byte budget split over N = 2^b shards, each an independent
//! [`LruNodeCache`] (bit-packed leaves + LRU) behind its own `Mutex`. A leaf
//! id maps to a shard by multiplicative (Fibonacci) hashing, so tree-search
//! workers only contend when they probe the *same* shard at the same
//! instant — which is exactly where concurrency pressure concentrates in
//! cache-conscious index traversal.
//!
//! Leaves are admitted two ways: by the searches themselves (a worker that
//! fetches an uncached leaf offers it to the shard, and the per-shard LRU
//! keeps each shard inside its slice of the budget), and by
//! [`ShardedNodeCache::warm_fill`] — an offline HFF-style fill from a
//! replayed workload's leaf-access ranking, run before tree-backed serving
//! goes live so the first epoch starts warm instead of paying cold misses.
//! The paper's compact representation (§3.6.1) keeps the split cheap: at
//! τ = 8 a cached leaf is ~4× smaller than its raw points.

use std::sync::{Arc, Mutex};

use hc_cache::concurrent::ConcurrentNodeCache;
use hc_cache::node::{LruNodeCache, NodeCache, NodeLookup};
use hc_core::scheme::ApproxScheme;
use hc_obs::MetricsRegistry;

/// N `Mutex<LruNodeCache>` shards under one byte budget.
pub struct ShardedNodeCache {
    shards: Vec<Mutex<LruNodeCache>>,
    /// `32 - log2(num_shards)`; shard = `(leaf * φ32) >> shard_shift`.
    shard_shift: u32,
    scheme: Arc<dyn ApproxScheme>,
}

/// Knuth's multiplicative constant: ⌊2^32 / φ⌋.
const FIB_MULT: u32 = 0x9E37_79B9;

impl ShardedNodeCache {
    /// Dynamic LRU node cache of `capacity_bytes` split evenly over
    /// `num_shards` (a power of two) shards.
    ///
    /// # Panics
    /// Panics if `num_shards` is zero or not a power of two.
    pub fn lru(scheme: Arc<dyn ApproxScheme>, capacity_bytes: usize, num_shards: usize) -> Self {
        assert!(
            num_shards.is_power_of_two(),
            "num_shards must be a power of two, got {num_shards}"
        );
        let per_shard = capacity_bytes / num_shards;
        let shards = (0..num_shards)
            .map(|_| Mutex::new(LruNodeCache::new(Arc::clone(&scheme), per_shard)))
            .collect();
        Self {
            shards,
            shard_shift: 32 - num_shards.trailing_zeros(),
            scheme,
        }
    }

    /// Offline HFF-style warm fill (§3.6.1): admit leaves in descending
    /// replayed-access-frequency order, stopping per shard once it is at
    /// budget so the hottest leaves stay resident (a plain `admit` loop
    /// through a full LRU shard would evict them). Member vectors come from
    /// `dataset` via `index.leaf_points` — this is a RAM-side fill, no
    /// paged I/O. Returns how many leaves were newly admitted.
    pub fn warm_fill(
        &self,
        index: &dyn hc_index::traits::LeafedIndex,
        dataset: &hc_core::dataset::Dataset,
        ranked_leaves: &[u32],
    ) -> usize {
        let mut filled = 0;
        for &leaf in ranked_leaves {
            let shard = self.shards[self.shard_of(leaf)]
                .lock()
                .expect("shard poisoned");
            if shard.contains(leaf) {
                continue;
            }
            let ids = index.leaf_points(leaf);
            let need = ids.len() * self.scheme.bytes_per_point();
            if shard.used_bytes() + need > shard.capacity_bytes() {
                continue; // shard full of hotter leaves — keep them
            }
            shard.admit(leaf, &mut ids.iter().map(|&id| dataset.point(id)));
            filled += 1;
        }
        filled
    }

    fn shard_of(&self, leaf: u32) -> usize {
        if self.shard_shift == 32 {
            return 0; // single shard; a 32-bit shift would be UB
        }
        (leaf.wrapping_mul(FIB_MULT) >> self.shard_shift) as usize
    }

    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Total resident leaves across shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("shard poisoned").len())
            .sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Per-shard `(used_bytes, capacity_bytes)` — the stress tests assert
    /// the budget invariant shard by shard.
    pub fn shard_occupancy(&self) -> Vec<(usize, usize)> {
        self.shards
            .iter()
            .map(|s| {
                let shard = s.lock().expect("shard poisoned");
                (shard.used_bytes(), shard.capacity_bytes())
            })
            .collect()
    }
}

impl ConcurrentNodeCache for ShardedNodeCache {
    fn lookup(&self, q: &[f32], leaf: u32) -> NodeLookup {
        self.shards[self.shard_of(leaf)]
            .lock()
            .expect("shard poisoned")
            .lookup(q, leaf)
    }

    fn admit(&self, leaf: u32, points: &mut dyn ExactSizeIterator<Item = &[f32]>) {
        self.shards[self.shard_of(leaf)]
            .lock()
            .expect("shard poisoned")
            .admit(leaf, points)
    }

    fn contains(&self, leaf: u32) -> bool {
        self.shards[self.shard_of(leaf)]
            .lock()
            .expect("shard poisoned")
            .contains(leaf)
    }

    fn used_bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("shard poisoned").used_bytes())
            .sum()
    }

    fn capacity_bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("shard poisoned").capacity_bytes())
            .sum()
    }

    fn label(&self) -> String {
        format!(
            "SHARDED-NODE(τ={})/LRU×{}",
            self.scheme.tau(),
            self.shards.len()
        )
    }

    /// Bind each shard under its own label
    /// (`"COMPACT-NODE(τ=8)/LRU/shard3"`), so hot-shard skew is visible;
    /// aggregate with `RegistrySnapshot::counter_sum("cache.hits")`.
    fn bind_obs(&self, registry: &MetricsRegistry) {
        for (i, shard) in self.shards.iter().enumerate() {
            let mut shard = shard.lock().expect("shard poisoned");
            let label = format!("{}/shard{i}", shard.label());
            shard.bind_obs_as(registry, &label);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hc_core::histogram::classic::equi_width;
    use hc_core::quantize::Quantizer;
    use hc_core::scheme::GlobalScheme;

    fn scheme(dim: usize) -> Arc<dyn ApproxScheme> {
        let quant = Quantizer::new(0.0, 100.0, 256);
        Arc::new(GlobalScheme::new(equi_width(256, 32), quant, dim))
    }

    fn leaf_points(leaf: u32, n: usize) -> Vec<Vec<f32>> {
        (0..n)
            .map(|i| vec![leaf as f32 + i as f32 * 0.1, (leaf % 7) as f32])
            .collect()
    }

    fn admit(c: &ShardedNodeCache, leaf: u32, n: usize) {
        let pts = leaf_points(leaf, n);
        c.admit(leaf, &mut pts.iter().map(|p| p.as_slice()));
    }

    #[test]
    fn rejects_non_power_of_two_shards() {
        let result = std::panic::catch_unwind(|| ShardedNodeCache::lru(scheme(2), 1 << 12, 3));
        assert!(result.is_err());
    }

    #[test]
    fn single_shard_works() {
        let c = ShardedNodeCache::lru(scheme(2), 1 << 12, 1);
        admit(&c, 1, 3);
        assert!(c.contains(1));
        assert_eq!(c.num_shards(), 1);
    }

    #[test]
    fn admissions_land_in_one_shard_and_lookups_find_them() {
        let c = ShardedNodeCache::lru(scheme(2), 1 << 16, 8);
        for leaf in 0..64u32 {
            admit(&c, leaf, 3);
        }
        assert_eq!(c.len(), 64);
        for leaf in 0..64u32 {
            assert!(c.contains(leaf), "leaf {leaf} lost");
            match c.lookup(&leaf_points(leaf, 1)[0], leaf) {
                NodeLookup::Bounds(b) => assert_eq!(b.len(), 3),
                other => panic!("expected bounds, got {other:?}"),
            }
        }
    }

    #[test]
    fn leaves_spread_over_shards() {
        let c = ShardedNodeCache::lru(scheme(2), 1 << 18, 8);
        for leaf in 0..256u32 {
            admit(&c, leaf, 2);
        }
        let occupied = c
            .shard_occupancy()
            .iter()
            .filter(|(used, _)| *used > 0)
            .count();
        assert!(
            occupied >= 6,
            "fibonacci hash left {occupied}/8 shards used"
        );
    }

    #[test]
    fn per_shard_budget_is_respected() {
        let s = scheme(2);
        let per_leaf = 3 * s.bytes_per_point();
        // Room for 4 leaves per shard across 4 shards.
        let c = ShardedNodeCache::lru(s, per_leaf * 16, 4);
        for leaf in 0..300u32 {
            admit(&c, leaf, 3);
        }
        for (used, cap) in c.shard_occupancy() {
            assert!(used <= cap, "shard over budget: {used} > {cap}");
        }
        assert!(c.used_bytes() <= c.capacity_bytes());
        assert!(c.len() <= 16);
    }

    #[test]
    fn per_shard_obs_series_are_labeled() {
        let registry = MetricsRegistry::new();
        let c = ShardedNodeCache::lru(scheme(2), 1 << 14, 4);
        ConcurrentNodeCache::bind_obs(&c, &registry);
        admit(&c, 3, 2);
        let _ = c.lookup(&[3.0, 3.0], 3); // hit
        let _ = c.lookup(&[9.0, 2.0], 9); // miss
        let snap = registry.snapshot();
        assert_eq!(snap.counter_sum("cache.hits"), 1);
        assert_eq!(snap.counter_sum("cache.misses"), 1);
        assert_eq!(snap.counter_sum("cache.insertions"), 1);
        let shard_labels = snap
            .counters
            .iter()
            .filter(|(id, _)| id.name == "cache.hits")
            .count();
        assert_eq!(shard_labels, 4, "one series per shard");
    }

    #[test]
    fn label_names_the_configuration() {
        let c = ShardedNodeCache::lru(scheme(2), 1 << 12, 8);
        assert_eq!(c.label(), "SHARDED-NODE(τ=5)/LRU×8");
    }

    #[test]
    fn warm_fill_admits_ranked_leaves_without_evicting_hotter_ones() {
        use hc_core::dataset::{Dataset, PointId};
        use hc_index::traits::LeafedIndex;

        /// Fixed partition of 30 points into 10 leaves of 3.
        struct FixedLeaves {
            members: Vec<Vec<PointId>>,
        }

        impl LeafedIndex for FixedLeaves {
            fn num_leaves(&self) -> u32 {
                self.members.len() as u32
            }
            fn leaf_points(&self, leaf: u32) -> &[PointId] {
                &self.members[leaf as usize]
            }
            fn leaf_lower_bounds(&self, _q: &[f32]) -> Vec<(u32, f64)> {
                (0..self.num_leaves()).map(|l| (l, 0.0)).collect()
            }
            fn leaf_of(&self, id: PointId) -> u32 {
                id.0 / 3
            }
            fn name(&self) -> &'static str {
                "FIXED"
            }
        }

        let s = scheme(2);
        let per_leaf = 3 * s.bytes_per_point();
        let rows: Vec<Vec<f32>> = (0..30u32).map(|i| vec![i as f32, 0.5]).collect();
        let dataset = Dataset::from_rows(&rows);
        let index = FixedLeaves {
            members: (0..10)
                .map(|l| (0..3).map(|i| PointId(l * 3 + i)).collect())
                .collect(),
        };
        // Room for 2 leaves per shard across 2 shards: 4 of 10 fit.
        let c = ShardedNodeCache::lru(s, per_leaf * 4, 2);
        let ranking: Vec<u32> = (0..10).collect();
        let filled = c.warm_fill(&index, &dataset, &ranking);
        assert_eq!(filled, c.len());
        assert!((2..=4).contains(&filled), "filled {filled}");
        assert!(c.contains(0), "rank-0 leaf must be resident");
        assert!(!c.contains(9), "tail leaf skipped, not evict-cycled");
        for (used, cap) in c.shard_occupancy() {
            assert!(used <= cap);
        }
        assert_eq!(c.warm_fill(&index, &dataset, &ranking), 0, "idempotent");
        // Warm-filled leaves serve real bounds.
        match c.lookup(&[0.0, 0.5], 0) {
            NodeLookup::Bounds(b) => assert_eq!(b.len(), 3),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn shared_adapter_runs_the_sharded_cache() {
        use hc_cache::concurrent::SharedNodeCache;
        let shared: Arc<dyn ConcurrentNodeCache> =
            Arc::new(ShardedNodeCache::lru(scheme(2), 1 << 14, 2));
        let adapter = SharedNodeCache::new(Arc::clone(&shared));
        let pts = leaf_points(5, 3);
        NodeCache::admit(&adapter, 5, &mut pts.iter().map(|p| p.as_slice()));
        assert!(shared.contains(5), "adapter admits into the shared cache");
        match NodeCache::lookup(&adapter, &pts[0], 5) {
            NodeLookup::Bounds(b) => assert_eq!(b.len(), 3),
            other => panic!("{other:?}"),
        }
    }
}
