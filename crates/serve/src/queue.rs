//! Bounded MPMC queue on `Mutex` + `Condvar` — the admission point of the
//! server.
//!
//! Producers never block: [`BoundedQueue::try_push`] fails fast with
//! [`PushError::Full`] when the queue is at capacity, which is what turns
//! overload into an explicit `Rejected` outcome instead of unbounded queue
//! growth. Consumers block in [`BoundedQueue::pop`] until an item arrives
//! or the queue is closed and drained.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a push was refused. The rejected item is handed back so the caller
/// can fulfil its response slot.
#[derive(Debug)]
pub enum PushError<T> {
    /// At capacity — shed the request.
    Full(T),
    /// [`BoundedQueue::close`] was called; no further admissions.
    Closed(T),
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A fixed-capacity multi-producer multi-consumer queue.
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        Self {
            inner: Mutex::new(Inner {
                items: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            not_empty: Condvar::new(),
            capacity,
        }
    }

    /// Non-blocking admission. Wakes one sleeping consumer on success.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        if inner.closed {
            return Err(PushError::Closed(item));
        }
        if inner.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        inner.items.push_back(item);
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Block until an item is available or the queue is closed *and*
    /// drained. `None` is the consumer's shutdown signal: close() lets
    /// workers finish whatever was already admitted.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.not_empty.wait(inner).expect("queue poisoned");
        }
    }

    /// Stop admissions and wake every blocked consumer. Items already
    /// queued are still handed out before `pop` starts returning `None`.
    pub fn close(&self) {
        let mut inner = self.inner.lock().expect("queue poisoned");
        inner.closed = true;
        drop(inner);
        self.not_empty.notify_all();
    }

    pub fn len(&self) -> usize {
        self.inner.lock().expect("queue poisoned").items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn push_pop_is_fifo() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn full_queue_rejects_and_returns_the_item() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        match q.try_push(3) {
            Err(PushError::Full(item)) => assert_eq!(item, 3),
            other => panic!("expected Full, got {other:?}"),
        }
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn closed_queue_rejects_pushes_but_drains_items() {
        let q = BoundedQueue::new(4);
        q.try_push(7).unwrap();
        q.close();
        match q.try_push(8) {
            Err(PushError::Closed(item)) => assert_eq!(item, 8),
            other => panic!("expected Closed, got {other:?}"),
        }
        assert_eq!(q.pop(), Some(7));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn close_wakes_blocked_consumers() {
        let q = Arc::new(BoundedQueue::<u32>::new(4));
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                thread::spawn(move || q.pop())
            })
            .collect();
        // Give consumers a moment to block, then close.
        thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        for c in consumers {
            assert_eq!(c.join().unwrap(), None);
        }
    }

    #[test]
    fn many_producers_many_consumers_lose_nothing() {
        let q = Arc::new(BoundedQueue::new(8));
        let producers: Vec<_> = (0..4u32)
            .map(|p| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    for i in 0..50u32 {
                        let item = p * 1000 + i;
                        // Spin on Full: this test wants total delivery.
                        loop {
                            match q.try_push(item) {
                                Ok(()) => break,
                                Err(PushError::Full(_)) => thread::yield_now(),
                                Err(PushError::Closed(_)) => panic!("closed early"),
                            }
                        }
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(item) = q.pop() {
                        got.push(item);
                    }
                    got
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let mut all: Vec<u32> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        let mut expect: Vec<u32> = (0..4u32)
            .flat_map(|p| (0..50u32).map(move |i| p * 1000 + i))
            .collect();
        expect.sort_unstable();
        assert_eq!(all, expect);
    }
}
