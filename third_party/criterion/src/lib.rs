//! Offline stand-in for the subset of `criterion 0.5` this workspace uses.
//!
//! The build environment cannot fetch crates, so this shim provides a small
//! but honest wall-clock benchmarking harness behind criterion's API:
//! benchmark groups, `bench_function` / `bench_with_input`, `sample_size`,
//! `Throughput`, and the `criterion_group!` / `criterion_main!` macros.
//!
//! Methodology: each benchmark is warmed up (~0.5 s), the iteration count
//! per sample is calibrated so one sample takes ~50 ms, then `sample_size`
//! samples are timed. The report prints `[min median mean]` per-iteration
//! times, mimicking criterion's `time: [low mid high]` line so existing
//! eyeballs and scripts keep working. No statistical regression analysis,
//! no plots, no saved baselines.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness state (mirrors `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 20,
            warm_up: Duration::from_millis(500),
            measurement: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// Accept and ignore criterion's CLI configuration (the real crate parses
    /// `--bench`, filters, etc.; `cargo bench` passes `--bench` through).
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== group: {name} ==");
        let (sample_size, warm_up, measurement) =
            (self.sample_size, self.warm_up, self.measurement);
        BenchmarkGroup {
            _parent: self,
            name,
            sample_size,
            warm_up,
            measurement,
            throughput: None,
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let report = run_bench(self.sample_size, self.warm_up, self.measurement, &mut f);
        print_report(name, &report, None);
        self
    }

    pub fn final_summary(self) {}
}

/// Units for throughput reporting (only what the workspace uses).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// A named benchmark within a group (mirrors `criterion::BenchmarkId`).
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        let report = run_bench(self.sample_size, self.warm_up, self.measurement, &mut f);
        print_report(&full, &report, self.throughput);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        let report = run_bench(self.sample_size, self.warm_up, self.measurement, &mut |b| {
            f(b, input)
        });
        print_report(&full, &report, self.throughput);
        self
    }

    pub fn finish(self) {}
}

/// Accepts both `&str` names and [`BenchmarkId`]s.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

/// Timing callback handle (mirrors `criterion::Bencher`).
pub struct Bencher {
    /// Iterations to run when in measurement mode.
    iters: u64,
    /// Measured duration of the `iter` call, filled by the closure.
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    pub fn iter_with_large_drop<O, R>(&mut self, routine: R)
    where
        R: FnMut() -> O,
    {
        self.iter(routine);
    }
}

struct Report {
    /// Per-iteration seconds: (min, median, mean).
    min: f64,
    median: f64,
    mean: f64,
    iters_per_sample: u64,
    samples: usize,
}

fn time_once<F: FnMut(&mut Bencher)>(iters: u64, f: &mut F) -> Duration {
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    b.elapsed
}

fn run_bench<F: FnMut(&mut Bencher)>(
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    f: &mut F,
) -> Report {
    // Warm-up, doubling the iteration count until the budget is spent.
    let warm_start = Instant::now();
    let mut iters = 1u64;
    let mut last = time_once(iters, f);
    while warm_start.elapsed() < warm_up {
        iters = iters.saturating_mul(2).min(1 << 30);
        last = time_once(iters, f);
        if iters == 1 << 30 {
            break;
        }
    }
    // Calibrate so one sample costs ~measurement/sample_size.
    let per_iter = (last.as_secs_f64() / iters as f64).max(1e-12);
    let target = measurement.as_secs_f64() / sample_size as f64;
    let iters_per_sample = ((target / per_iter) as u64).clamp(1, 1 << 30);

    let mut samples: Vec<f64> = (0..sample_size)
        .map(|_| time_once(iters_per_sample, f).as_secs_f64() / iters_per_sample as f64)
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    Report {
        min,
        median,
        mean,
        iters_per_sample,
        samples: sample_size,
    }
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.4} s")
    } else if secs >= 1e-3 {
        format!("{:.4} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.4} µs", secs * 1e6)
    } else {
        format!("{:.4} ns", secs * 1e9)
    }
}

fn print_report(name: &str, r: &Report, throughput: Option<Throughput>) {
    let mut line = format!(
        "{name:<50} time: [{} {} {}]",
        fmt_time(r.min),
        fmt_time(r.median),
        fmt_time(r.mean)
    );
    if let Some(t) = throughput {
        let (count, unit) = match t {
            Throughput::Elements(n) => (n, "elem"),
            Throughput::Bytes(n) => (n, "B"),
        };
        let rate = count as f64 / r.median;
        line.push_str(&format!("  thrpt: {rate:.3e} {unit}/s"));
    }
    line.push_str(&format!(
        "  ({} samples × {} iters)",
        r.samples, r.iters_per_sample
    ));
    println!("{line}");
}

#[macro_export]
macro_rules! criterion_group {
    ($group_name:ident, $($target:path),+ $(,)?) => {
        pub fn $group_name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion {
            sample_size: 3,
            warm_up: Duration::from_millis(5),
            measurement: Duration::from_millis(15),
        };
        let mut group = c.benchmark_group("shim");
        group.sample_size(3).throughput(Throughput::Elements(10));
        let mut calls = 0u64;
        group.bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        group.bench_with_input(BenchmarkId::new("with_input", 4), &4u64, |b, &x| {
            b.iter(|| x * 2)
        });
        group.finish();
        assert!(calls > 0, "routine must actually run");
    }
}
