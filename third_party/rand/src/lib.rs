//! Offline stand-in for the subset of `rand 0.8` this workspace uses.
//!
//! The build environment has no network access and no vendored registry, so
//! the real `rand` crate cannot be fetched. This shim implements the exact
//! API surface the workspace calls — `SeedableRng::seed_from_u64`,
//! `Rng::gen_range` over integer and float ranges, and the `StdRng` /
//! `SmallRng` type names — on top of xoshiro256++ seeded via SplitMix64.
//!
//! Streams are deterministic but do **not** match upstream `rand`'s output
//! for the same seed; nothing in the workspace depends on upstream streams,
//! only on determinism and reasonable statistical quality.

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness (mirrors `rand_core::RngCore`).
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

/// Seedable construction (mirrors `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    type Seed: AsMut<[u8]> + Default;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expand a `u64` into a full seed via SplitMix64 (same contract as
    /// upstream: distinct `state` values give independent streams).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let x = splitmix64(&mut state);
            for (b, s) in chunk.iter_mut().zip(x.to_le_bytes()) {
                *b = s;
            }
        }
        Self::from_seed(seed)
    }
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// High-level convenience methods (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform sample from a half-open or inclusive range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Types with a uniform sampler (mirrors
/// `rand::distributions::uniform::SampleUniform`).
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`
    /// (`inclusive = true`). The range must be non-empty.
    fn sample_in<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self;
}

/// Ranges that can produce a uniform sample (mirrors
/// `rand::distributions::uniform::SampleRange`). The single blanket impl per
/// range type is load-bearing: it lets a literal like `0.15..0.6` infer its
/// element type from the call site's expected output type, exactly as
/// upstream rand does.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_in(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_in(lo, hi, true, rng)
    }
}

/// `x mod span` — the modulo bias is ≤ span/2⁶⁴, negligible for the
/// simulation workloads this shim serves.
#[inline]
fn widening_mod(x: u64, span: u128) -> u128 {
    if span == 0 {
        // Full u64 (or wider) span: the raw draw is already uniform.
        x as u128
    } else {
        (x as u128) % span
    }
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_in<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + inclusive as u128;
                let v = widening_mod(rng.next_u64(), span);
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_in<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                // 53 uniform mantissa bits in [0, 1).
                let u01 = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                let v = (lo as f64 + (hi as f64 - lo as f64) * u01) as $t;
                // Guard against rounding up to an excluded endpoint.
                if !inclusive && v >= hi { lo } else { v }
            }
        }
    )*};
}

impl_uniform_float!(f32, f64);

/// The RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — fast, high-quality, 256-bit state. Stands in for
    /// upstream's ChaCha12-based `StdRng` (we need determinism and quality,
    /// not cryptographic security).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let x = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&x[..chunk.len()]);
            }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // All-zero state is the one invalid xoshiro state.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            Self { s }
        }
    }

    /// Small-footprint alias — same engine as [`StdRng`] here.
    pub type SmallRng = StdRng;
}

pub use rngs::StdRng as _StdRngForDocs;

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..1_000_000)).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..1_000_000)).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen_range(0u64..1_000_000)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let f: f64 = rng.gen_range(-2.5..2.5);
            assert!((-2.5..2.5).contains(&f));
            let g: f32 = rng.gen_range(0.15..0.6);
            assert!((0.15..0.6).contains(&g));
            let i: u32 = rng.gen_range(0..=4);
            assert!(i <= 4);
        }
    }

    #[test]
    fn uniformity_is_plausible() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[rng.gen_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!(
                (8_000..12_000).contains(&c),
                "bucket count {c} far from 10k"
            );
        }
    }
}
