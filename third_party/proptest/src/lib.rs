//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! The build environment cannot fetch crates, so this shim re-implements the
//! pieces the workspace's property tests rely on:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(...)]`),
//! * [`Strategy`] with `prop_map` / `prop_flat_map`,
//! * numeric range strategies and tuple strategies,
//! * `prop::collection::vec` with `usize` / range size specifiers,
//! * `prop_assert!` / `prop_assert_eq!`.
//!
//! It generates random cases but performs **no shrinking**: a failing case
//! panics with the standard assert message plus the case number. The RNG is
//! seeded deterministically per test function, so failures reproduce.

use std::ops::{Range, RangeInclusive};

pub use rand::rngs::StdRng as TestRng;
use rand::Rng;

/// Runner configuration (mirrors `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A generator of random values (mirrors `proptest::strategy::Strategy`,
/// minus value trees and shrinking).
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

/// Collection strategies (mirrors `proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Size specifier: a fixed count or a range of counts.
    pub trait IntoSizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoSizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl IntoSizeRange for RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: IntoSizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `vec(element, len)` — a vector whose length is drawn from `len`.
    pub fn vec<S: Strategy, L: IntoSizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }
}

/// Runner internals used by the [`proptest!`] expansion.
pub mod test_runner {
    pub use super::{ProptestConfig, TestRng};
    use rand::SeedableRng;

    /// Deterministic per-test RNG: hash the test path so each property gets
    /// an independent but reproducible stream.
    pub fn rng_for(test_path: &str) -> TestRng {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
        for b in test_path.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng::seed_from_u64(h)
    }
}

/// The common import surface (`use proptest::prelude::*;`).
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };

    /// Mirrors the `prop` module alias from upstream's prelude.
    pub mod prop {
        pub use crate::collection;
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*);
    };
}

/// Expand property functions into `#[test]` functions that loop over random
/// cases. Supports the `#![proptest_config(...)]` header; each parameter is
/// `name in strategy`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut rng =
                $crate::test_runner::rng_for(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..cfg.cases {
                let run = |rng: &mut $crate::TestRng| {
                    $(let $arg = $crate::Strategy::generate(&($strat), rng);)+
                    $body
                };
                let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                    run(&mut rng)
                }));
                if let Err(panic) = result {
                    eprintln!(
                        "proptest case {}/{} of {} failed (shim: no shrinking)",
                        __case + 1,
                        cfg.cases,
                        stringify!($name),
                    );
                    ::std::panic::resume_unwind(panic);
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_vecs(
            x in 1u32..10,
            v in prop::collection::vec(-1.0f32..1.0, 2..=5),
        ) {
            prop_assert!((1..10).contains(&x));
            prop_assert!((2..=5).contains(&v.len()));
            prop_assert!(v.iter().all(|f| (-1.0..1.0).contains(f)));
        }

        #[test]
        fn flat_map_chains(pair in (1usize..=6, 2usize..=4).prop_flat_map(|(n, d)| {
            prop::collection::vec(prop::collection::vec(0.0f64..1.0, d..=d), n..=n)
                .prop_map(move |rows| (n, d, rows))
        })) {
            let (n, d, rows) = pair;
            prop_assert_eq!(rows.len(), n);
            prop_assert!(rows.iter().all(|r| r.len() == d));
        }
    }

    #[test]
    fn deterministic_rng_per_path() {
        use crate::Strategy;
        let mut a = crate::test_runner::rng_for("x::y");
        let mut b = crate::test_runner::rng_for("x::y");
        let s = 0u64..1_000;
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }
}
