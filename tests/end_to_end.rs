//! Cross-crate integration tests: the full paper pipeline — synthetic data,
//! C2LSH / VA-file / tree indexes, workload replay, histogram construction,
//! caches, Algorithm 1 — exercised end to end.
//!
//! The load-bearing invariant throughout: **caching never changes query
//! results**, only I/O.

use std::sync::Arc;

use exploit_every_bit::cache::cva::cva_cache;
use exploit_every_bit::cache::point::{CompactPointCache, ExactPointCache, NoCache, PointCache};
use exploit_every_bit::core::dataset::{Dataset, PointId};
use exploit_every_bit::core::distance::euclidean;
use exploit_every_bit::core::histogram::HistogramKind;
use exploit_every_bit::core::prelude::*;
use exploit_every_bit::index::lsh::{C2lsh, C2lshParams};
use exploit_every_bit::index::traits::CandidateIndex;
use exploit_every_bit::index::VaFile;
use exploit_every_bit::query::{replay_workload, KnnEngine, Replay};
use exploit_every_bit::storage::PointFile;
use exploit_every_bit::workload::synth::gaussian_mixture;
use exploit_every_bit::workload::{QueryLog, QueryLogConfig};

struct Env {
    dataset: Dataset,
    index: C2lsh,
    file: PointFile,
    replay: Replay,
    quantizer: Quantizer,
    log: QueryLog,
    k: usize,
}

fn env() -> Env {
    let raw = gaussian_mixture(2_000, 24, 10, 10.0, 0.4, 77);
    let log = QueryLog::generate(
        &raw,
        &QueryLogConfig {
            pool_size: 100,
            workload_len: 400,
            test_len: 20,
            ..Default::default()
        },
    );
    let dataset = log.dataset.clone();
    let index = C2lsh::build(&dataset, C2lshParams::default());
    let file = PointFile::new(dataset.clone());
    let k = 5;
    let replay = replay_workload(&index, &dataset, &log.workload, k);
    let quantizer = Quantizer::for_range(dataset.value_range());
    Env {
        dataset,
        index,
        file,
        replay,
        quantizer,
        log,
        k,
    }
}

fn hc_scheme(env: &Env, kind: HistogramKind, tau: u32) -> Arc<dyn ApproxScheme> {
    let freq = if kind.uses_workload_frequencies() {
        env.replay.f_prime(&env.dataset, &env.quantizer)
    } else {
        env.quantizer.frequency_array(env.dataset.as_flat())
    };
    let hist = kind.build(&freq, 1 << tau);
    Arc::new(GlobalScheme::new(
        hist,
        env.quantizer.clone(),
        env.dataset.dim(),
    ))
}

/// Results under any cache must equal the NO-CACHE results (as id sets; ties
/// broken arbitrarily are tolerated by comparing distance multisets).
#[test]
fn all_caches_preserve_results() {
    let env = env();
    let budget = env.dataset.file_bytes() / 4;
    let caches: Vec<(String, Box<dyn PointCache>)> = vec![
        ("nocache".into(), Box::new(NoCache)),
        (
            "exact".into(),
            Box::new(ExactPointCache::hff(
                &env.dataset,
                &env.replay.ranking,
                budget,
            )),
        ),
        (
            "hc-w".into(),
            Box::new(CompactPointCache::hff(
                &env.dataset,
                &env.replay.ranking,
                budget,
                hc_scheme(&env, HistogramKind::EquiWidth, 8),
            )),
        ),
        (
            "hc-o".into(),
            Box::new(CompactPointCache::hff(
                &env.dataset,
                &env.replay.ranking,
                budget,
                hc_scheme(&env, HistogramKind::KnnOptimal, 8),
            )),
        ),
        (
            "c-va".into(),
            Box::new(cva_cache(&env.dataset, &env.quantizer, budget)),
        ),
    ];

    // Reference distances from the NO-CACHE pipeline.
    let reference: Vec<Vec<f64>> = {
        let mut engine = KnnEngine::new(&env.index, &env.file, Box::new(NoCache));
        env.log
            .test
            .iter()
            .map(|q| {
                let (ids, _) = engine.query(q, env.k);
                let mut d: Vec<f64> = ids
                    .iter()
                    .map(|id| euclidean(q, env.dataset.point(*id)))
                    .collect();
                d.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
                d
            })
            .collect()
    };

    for (name, cache) in caches {
        let mut engine = KnnEngine::new(&env.index, &env.file, cache);
        for (q, want) in env.log.test.iter().zip(&reference) {
            let (ids, _) = engine.query(q, env.k);
            assert_eq!(ids.len(), want.len(), "{name}: result size");
            let mut got: Vec<f64> = ids
                .iter()
                .map(|id| euclidean(q, env.dataset.point(*id)))
                .collect();
            got.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            for (g, w) in got.iter().zip(want) {
                assert!((g - w).abs() < 1e-9, "{name}: {g} vs {w}");
            }
        }
    }
}

/// The headline mechanism: at equal budget, the HC-O compact cache must do
/// fewer refinement I/Os than the EXACT cache, which must do fewer than
/// NO-CACHE.
#[test]
fn compact_cache_reduces_io_ordering() {
    let env = env();
    let budget = env.dataset.file_bytes() / 4;
    let measure = |cache: Box<dyn PointCache>| -> f64 {
        let mut engine = KnnEngine::new(&env.index, &env.file, cache);
        engine.run_batch(&env.log.test, env.k).avg_io_pages
    };
    let none = measure(Box::new(NoCache));
    let exact = measure(Box::new(ExactPointCache::hff(
        &env.dataset,
        &env.replay.ranking,
        budget,
    )));
    let hco = measure(Box::new(CompactPointCache::hff(
        &env.dataset,
        &env.replay.ranking,
        budget,
        hc_scheme(&env, HistogramKind::KnnOptimal, 8),
    )));
    assert!(exact < none, "EXACT {exact} !< NO-CACHE {none}");
    assert!(hco < exact, "HC-O {hco} !< EXACT {exact}");
}

/// C2LSH candidate sets must contain most true nearest neighbors (recall of
/// the candidate generation phase).
#[test]
fn c2lsh_candidates_have_high_recall() {
    let env = env();
    let mut hits = 0usize;
    let mut total = 0usize;
    for q in &env.log.test {
        let cands = env.index.candidates(q, env.k);
        let mut all: Vec<(f64, PointId)> = env
            .dataset
            .iter()
            .map(|(id, p)| (euclidean(q, p), id))
            .collect();
        all.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
        for (_, id) in all.into_iter().take(env.k) {
            total += 1;
            if cands.contains(&id) {
                hits += 1;
            }
        }
    }
    let recall = hits as f64 / total as f64;
    assert!(recall > 0.8, "candidate recall {recall}");
}

/// VA-file through the same pipeline is exact end to end.
#[test]
fn vafile_pipeline_is_exact() {
    let env = env();
    let va = VaFile::build(&env.dataset, 6);
    let mut engine = KnnEngine::new(&va, &env.file, Box::new(NoCache));
    for q in env.log.test.iter().take(5) {
        let (ids, _) = engine.query(q, env.k);
        let mut got: Vec<f64> = ids
            .iter()
            .map(|id| euclidean(q, env.dataset.point(*id)))
            .collect();
        got.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let mut all: Vec<f64> = env.dataset.iter().map(|(_, p)| euclidean(q, p)).collect();
        all.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        for (g, w) in got.iter().zip(all.iter().take(env.k)) {
            assert!((g - w).abs() < 1e-9, "VA-file pipeline inexact: {g} vs {w}");
        }
    }
}

/// Cost-model sanity on a live system: the estimated I/O for HC-W at the
/// deployed τ must be within a factor of ~3 of the measured I/O.
#[test]
fn cost_model_tracks_measured_io() {
    use exploit_every_bit::core::cost_model::estimate_equiwidth;
    let env = env();
    let budget = env.dataset.file_bytes() / 4;
    let stats = env.replay.workload_stats(&env.dataset);
    for tau in [6u32, 8, 10] {
        let est = estimate_equiwidth(&stats, budget, &env.quantizer, tau);
        let cache = CompactPointCache::hff(
            &env.dataset,
            &env.replay.ranking,
            budget,
            hc_scheme(&env, HistogramKind::EquiWidth, tau),
        );
        let mut engine = KnnEngine::new(&env.index, &env.file, Box::new(cache));
        let measured = engine.run_batch(&env.log.test, env.k).avg_io_pages;
        let ratio = (est.refine_io + 1.0) / (measured + 1.0);
        assert!(
            (0.2..=5.0).contains(&ratio),
            "τ={tau}: est {:.1} vs measured {measured:.1}",
            est.refine_io
        );
    }
}

/// LRU caches warm up: I/O on a repeated query drops after the first run.
#[test]
fn lru_cache_warms_up() {
    let env = env();
    let budget = env.dataset.file_bytes() / 2;
    let cache = ExactPointCache::lru(env.dataset.dim(), budget);
    let mut engine = KnnEngine::new(&env.index, &env.file, Box::new(cache));
    let q = &env.log.test[0];
    let (_, cold) = engine.query(q, env.k);
    let (_, warm) = engine.query(q, env.k);
    assert!(
        warm.io_pages < cold.io_pages,
        "warm {} !< cold {}",
        warm.io_pages,
        cold.io_pages
    );
    assert!(warm.cache_hits > 0);
}

/// The generality claim (§6): the same pipeline and caches run unchanged on
/// E2LSH, and results match the candidate sets exactly.
#[test]
fn e2lsh_pipeline_parity() {
    use exploit_every_bit::index::lsh::{E2lsh, E2lshParams};
    let env = env();
    let e2 = E2lsh::build(&env.dataset, E2lshParams::default());
    let budget = env.dataset.file_bytes() / 4;
    let replay = replay_workload(&e2, &env.dataset, &env.log.workload, env.k);
    let cache = CompactPointCache::hff(
        &env.dataset,
        &replay.ranking,
        budget,
        hc_scheme(&env, HistogramKind::KnnOptimal, 8),
    );
    let mut cached_engine = KnnEngine::new(&e2, &env.file, Box::new(cache));
    let mut bare_engine = KnnEngine::new(&e2, &env.file, Box::new(NoCache));
    for q in env.log.test.iter().take(8) {
        let (a, st_a) = cached_engine.query(q, env.k);
        let (b, _) = bare_engine.query(q, env.k);
        let dist = |ids: &[PointId]| -> Vec<f64> {
            let mut d: Vec<f64> = ids
                .iter()
                .map(|id| euclidean(q, env.dataset.point(*id)))
                .collect();
            d.sort_by(|x, y| x.partial_cmp(y).expect("finite"));
            d
        };
        let (da, db) = (dist(&a), dist(&b));
        for (x, y) in da.iter().zip(&db) {
            assert!((x - y).abs() < 1e-9, "E2LSH cached vs bare mismatch");
        }
        assert!(st_a.candidates > 0);
    }
}

/// Theorem 1 holds empirically: the measured compact-cache hit ratio never
/// exceeds `(L_value / τ) · ρ*_hit` (the exact cache's hit ratio at the same
/// budget), up to the word-alignment slack the theorem's idealized packing
/// ignores.
#[test]
fn theorem1_hit_ratio_bound_holds() {
    use exploit_every_bit::core::cost_model::L_VALUE_BITS;
    let env = env();
    let budget = env.dataset.file_bytes() / 20; // small enough that ρ*_hit < 1
    let tau = 8u32;
    let measure_hits = |cache: Box<dyn PointCache>| -> f64 {
        let mut engine = KnnEngine::new(&env.index, &env.file, cache);
        let stats: Vec<_> = env
            .log
            .test
            .iter()
            .map(|q| engine.query(q, env.k).1)
            .collect();
        let hits: usize = stats.iter().map(|s| s.cache_hits).sum();
        let cands: usize = stats.iter().map(|s| s.candidates).sum();
        hits as f64 / cands.max(1) as f64
    };
    let rho_exact = measure_hits(Box::new(ExactPointCache::hff(
        &env.dataset,
        &env.replay.ranking,
        budget,
    )));
    let rho_compact = measure_hits(Box::new(CompactPointCache::hff(
        &env.dataset,
        &env.replay.ranking,
        budget,
        hc_scheme(&env, HistogramKind::EquiWidth, tau),
    )));
    let bound = (L_VALUE_BITS as f64 / tau as f64) * rho_exact;
    assert!(
        rho_compact <= bound.min(1.0) + 0.05,
        "Theorem 1 violated: ρ_hit {rho_compact:.3} > ({L_VALUE_BITS}/{tau})·{rho_exact:.3}"
    );
    assert!(
        rho_compact > rho_exact,
        "compact cache should hit more often"
    );
}
