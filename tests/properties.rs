//! Property-based tests (proptest) for the core invariants the paper's
//! correctness rests on:
//!
//! 1. bounds soundness — `dist⁻ ≤ dist ≤ dist⁺` for every scheme and data,
//! 2. Lemma 1 — `dist⁺ − dist ≤ ||ε(c)||`,
//! 3. code round-trips through bit packing,
//! 4. histogram well-formedness (cover the domain, ≤ B buckets) for every
//!    construction on arbitrary frequency arrays,
//! 5. Algorithm 2 DP optimality against brute force on small domains,
//! 6. Lemma 3 monotonicity of Υ,
//! 7. multi-step refinement = exact kNN for arbitrary lower bounds that are
//!    sound.

use proptest::prelude::*;

use exploit_every_bit::core::codes::{pack_codes, unpack_code, words_per_point};
use exploit_every_bit::core::dataset::{Dataset, PointId};
use exploit_every_bit::core::distance::euclidean;
use exploit_every_bit::core::histogram::knn_optimal::{m3_metric, UpsilonCost};
use exploit_every_bit::core::histogram::{dp, HistogramKind};
use exploit_every_bit::core::prelude::*;

fn small_points(d: usize, n: usize) -> impl Strategy<Value = Vec<Vec<f32>>> {
    prop::collection::vec(prop::collection::vec(-100.0f32..100.0, d..=d), 1..=n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// (1) + (2): global-scheme bounds sandwich the exact distance and obey
    /// Lemma 1, for arbitrary data, query, τ, and histogram kind.
    #[test]
    fn bounds_sound_for_all_histograms(
        rows in small_points(4, 12),
        q in prop::collection::vec(-120.0f32..120.0, 4..=4),
        tau in 1u32..8,
        kind_idx in 0usize..4,
    ) {
        let ds = Dataset::from_rows(&rows);
        let (lo, hi) = ds.value_range();
        let quant = Quantizer::new(lo, hi, 256);
        let kind = [
            HistogramKind::EquiWidth,
            HistogramKind::EquiDepth,
            HistogramKind::VOptimal,
            HistogramKind::KnnOptimal,
        ][kind_idx];
        let freq = quant.frequency_array(ds.as_flat());
        let hist = kind.build(&freq, 1 << tau);
        let scheme = GlobalScheme::new(hist, quant, ds.dim());
        for (_, p) in ds.iter() {
            let w = scheme.encode(p);
            let b = scheme.bounds(&q, &w);
            let d = euclidean(&q, p);
            prop_assert!(b.lb <= d + 1e-5, "lb {} > dist {d}", b.lb);
            prop_assert!(b.ub >= d - 1e-5, "ub {} < dist {d}", b.ub);
            let eps = scheme.error_norm_sq(&w).sqrt();
            prop_assert!(b.ub - d <= eps + 1e-4, "Lemma 1 violated: {} > {eps}", b.ub - d);
        }
    }

    /// (3): bit packing round-trips arbitrary code sequences at any τ.
    #[test]
    fn codes_round_trip(
        tau in 1u32..=24,
        codes in prop::collection::vec(0u32..u32::MAX, 1..40),
    ) {
        let mask = if tau == 32 { u32::MAX } else { (1u32 << tau) - 1 };
        let codes: Vec<u32> = codes.into_iter().map(|c| c & mask).collect();
        let mut words = Vec::new();
        pack_codes(codes.iter().copied(), tau, &mut words);
        prop_assert_eq!(words.len(), words_per_point(codes.len(), tau));
        for (i, &c) in codes.iter().enumerate() {
            prop_assert_eq!(unpack_code(&words, tau, i), c);
        }
    }

    /// (4): every construction yields a well-formed histogram — covers
    /// [0, N_dom), at most B buckets, strictly increasing boundaries.
    #[test]
    fn histograms_are_well_formed(
        freq in prop::collection::vec(0u64..50, 4..64),
        b in 1u32..32,
        kind_idx in 0usize..4,
    ) {
        let kind = [
            HistogramKind::EquiWidth,
            HistogramKind::EquiDepth,
            HistogramKind::VOptimal,
            HistogramKind::KnnOptimal,
        ][kind_idx];
        let n_dom = freq.len() as u32;
        let hist = kind.build(&freq, b);
        prop_assert!(hist.num_buckets() as u32 <= b.min(n_dom));
        prop_assert_eq!(hist.bucket_levels(0).0, 0);
        prop_assert_eq!(hist.bucket_levels(hist.num_buckets() as u32 - 1).1, n_dom - 1);
        // Every level maps to exactly one bucket whose interval contains it.
        for level in 0..n_dom {
            let bk = hist.bucket_of_level(level);
            let (l, u) = hist.bucket_levels(bk);
            prop_assert!(l <= level && level <= u);
        }
    }

    /// (5): Algorithm 2 matches exhaustive search on small domains.
    #[test]
    fn dp_is_optimal_on_small_domains(
        freq in prop::collection::vec(0u64..9, 3..10),
        b in 1u32..5,
    ) {
        let hist = HistogramKind::KnnOptimal.build(&freq, b);
        let got = m3_metric(&hist, &freq);
        let want = brute_force_m3(&freq, b);
        prop_assert!((got - want).abs() < 1e-9, "dp {got} vs brute {want}");
    }

    /// (6): Υ is monotone under left-expansion (Lemma 3) for arbitrary F'.
    #[test]
    fn upsilon_monotone(freq in prop::collection::vec(0u64..100, 2..24)) {
        let cost = UpsilonCost::new(&freq);
        let n = freq.len() as u32;
        for u in 0..n {
            let mut prev = f64::NEG_INFINITY;
            for l in (0..=u).rev() {
                let c = dp::IntervalCost::cost(&cost, l, u);
                prop_assert!(c >= prev - 1e-12);
                prev = c;
            }
        }
    }

    /// (7): multi-step refinement with arbitrary *sound* lower bounds always
    /// returns the exact kNN among candidates.
    #[test]
    fn multistep_is_exact_for_sound_bounds(
        rows in small_points(3, 15),
        q in prop::collection::vec(-120.0f32..120.0, 3..=3),
        k in 1usize..5,
        slack in prop::collection::vec(0.0f64..50.0, 15),
    ) {
        use exploit_every_bit::cache::point::NoCache;
        use exploit_every_bit::query::multistep::{multistep_refine, Pending};
        use exploit_every_bit::storage::PointFile;

        let ds = Dataset::from_rows(&rows);
        let file = PointFile::new(ds.clone());
        let pending: Vec<Pending> = ds
            .iter()
            .map(|(id, p)| {
                let d = euclidean(&q, p);
                // A sound lower bound: exact distance minus arbitrary slack.
                let lb = (d - slack[id.index() % slack.len()]).max(0.0);
                Pending { id, lb, ub: f64::INFINITY }
            })
            .collect();
        let mut buf = file.begin_query();
        let out = multistep_refine(
            &file,
            &mut buf,
            &q,
            k,
            &[],
            pending,
            &mut NoCache,
            &exploit_every_bit::storage::RetryPolicy::default(),
            &exploit_every_bit::storage::RetryObs::new(),
            &exploit_every_bit::storage::RealClock,
            0,
        );
        // Compare against sorted exact distances.
        let mut all: Vec<f64> = ds.iter().map(|(_, p)| euclidean(&q, p)).collect();
        all.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let want = &all[..k.min(all.len())];
        prop_assert_eq!(out.results.len(), want.len());
        for ((_, got), want) in out.results.iter().zip(want) {
            prop_assert!((got - want).abs() < 1e-9);
        }
    }
}

/// Exhaustive minimum of the M3 metric over partitions into at most `b`
/// buckets.
fn brute_force_m3(freq: &[u64], b: u32) -> f64 {
    fn upsilon(freq: &[u64], l: usize, u: usize) -> f64 {
        let w: u64 = freq[l..=u].iter().sum();
        let width = (u - l) as f64;
        w as f64 * width * width
    }
    fn rec(freq: &[u64], start: usize, b: u32) -> f64 {
        if start == freq.len() {
            return 0.0;
        }
        if b == 1 {
            return upsilon(freq, start, freq.len() - 1);
        }
        let mut best = f64::INFINITY;
        for end in start..freq.len() {
            let c = upsilon(freq, start, end) + rec(freq, end + 1, b - 1);
            if c < best {
                best = c;
            }
        }
        best
    }
    rec(freq, 0, b)
}

/// Deterministic cross-check that `PointId` ordering in QR construction is
/// stable (regression guard for the builder's tie-breaking).
#[test]
fn pointid_ordering_is_stable() {
    let mut v = vec![PointId(3), PointId(1), PointId(2)];
    v.sort();
    assert_eq!(v, vec![PointId(1), PointId(2), PointId(3)]);
}
