//! Auto-tuning the code length τ with the §4 cost model.
//!
//! The central trade-off of the paper's challenge (2): few bits per point →
//! high hit ratio but loose bounds; many bits → tight bounds but low hit
//! ratio. This example sweeps τ, prints the model's predicted hit ratio,
//! refinement ratio, and I/O per query, compares against *measured* I/O
//! (Fig. 12 style), and reports the model-chosen τ*.
//!
//! Run with: `cargo run --release --example tune_tau`

use std::sync::Arc;

use exploit_every_bit::cache::point::CompactPointCache;
use exploit_every_bit::core::cost_model::{estimate_equiwidth, optimal_tau_equiwidth};
use exploit_every_bit::core::histogram::HistogramKind;
use exploit_every_bit::core::prelude::*;
use exploit_every_bit::index::lsh::{C2lsh, C2lshParams};
use exploit_every_bit::query::{replay_workload, KnnEngine};
use exploit_every_bit::storage::PointFile;
use exploit_every_bit::workload::synth::gaussian_mixture;
use exploit_every_bit::workload::{QueryLog, QueryLogConfig};

fn main() {
    let k = 10;
    let raw = gaussian_mixture(4_000, 96, 20, 10.0, 2.0, 99);
    let log = QueryLog::generate(
        &raw,
        &QueryLogConfig {
            pool_size: 150,
            workload_len: 800,
            test_len: 30,
            ..Default::default()
        },
    );
    let ds = log.dataset.clone();
    let index = C2lsh::build(&ds, C2lshParams::default());
    let file = PointFile::new(ds.clone());
    let replay = replay_workload(&index, &ds, &log.workload, k);
    let stats = replay.workload_stats(&ds);
    let quantizer = Quantizer::for_range(ds.value_range());
    let cache_bytes = ds.file_bytes() / 10; // deliberately small: τ matters

    println!(
        "cache = {:.1} MB ({}% of file); model inputs: E|C(q)| = {:.0}, D_max = {:.2}",
        cache_bytes as f64 / 1e6,
        100 * cache_bytes / ds.file_bytes(),
        stats.avg_candidates,
        stats.d_max
    );
    println!(
        "\n{:>4} {:>10} {:>12} {:>14} {:>14}",
        "τ", "ρ_hit", "ρ_refine", "est. I/O", "measured I/O"
    );

    let f_data = quantizer.frequency_array(ds.as_flat());
    for tau in [1u32, 2, 4, 6, 8, 10, 12] {
        let est = estimate_equiwidth(&stats, cache_bytes, &quantizer, tau);
        // Measure with an actual equi-width compact cache at this τ.
        let hist = HistogramKind::EquiWidth.build(&f_data, 1 << tau);
        let scheme: Arc<dyn ApproxScheme> =
            Arc::new(GlobalScheme::new(hist, quantizer.clone(), ds.dim()));
        let cache = CompactPointCache::hff(&ds, &replay.ranking, cache_bytes, scheme);
        let mut engine = KnnEngine::new(&index, &file, Box::new(cache));
        let agg = engine.run_batch(&log.test, k);
        println!(
            "{tau:>4} {:>10.3} {:>12.3} {:>14.1} {:>14.1}",
            est.rho_hit, est.rho_refine, est.refine_io, agg.avg_io_pages
        );
    }

    let best = optimal_tau_equiwidth(&stats, cache_bytes, &quantizer, 1..=16);
    println!(
        "\nmodel-chosen τ* = {} (estimated {:.1} I/Os per query)",
        best.tau, best.refine_io
    );
}
