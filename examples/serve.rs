//! Serving: concurrent kNN queries over one shared compact cache.
//!
//! Builds a small clustered dataset and a C2LSH index, shares them across a
//! pool of worker threads ([`QueryServer`]) together with one sharded HC-O
//! cache, and drives a Zipf-skewed closed-loop workload at 1 and 4 workers
//! to show the throughput scaling — then overloads the server open-loop to
//! show bounded-queue shedding (explicit rejections instead of runaway
//! latency).
//!
//! Run with: `cargo run --release --example serve`

use std::sync::Arc;
use std::time::Duration;

use exploit_every_bit::core::histogram::HistogramKind;
use exploit_every_bit::core::prelude::*;
use exploit_every_bit::index::lsh::{C2lsh, C2lshParams};
use exploit_every_bit::obs::MetricsRegistry;
use exploit_every_bit::query::{replay_workload, SharedParts};
use exploit_every_bit::serve::{
    run_closed_loop, run_open_loop, QueryServer, ServeConfig, ShardedCompactCache,
};
use exploit_every_bit::storage::io_stats::IoModel;
use exploit_every_bit::storage::PointFile;
use exploit_every_bit::workload::synth::gaussian_mixture;
use exploit_every_bit::workload::{Popularity, QueryLog, QueryLogConfig};

fn main() {
    let k = 10;

    // 1. Data, index, disk file — as in the quickstart.
    let raw = gaussian_mixture(3_000, 48, 15, 10.0, 0.4, 7);
    let log = QueryLog::generate(
        &raw,
        &QueryLogConfig {
            pool_size: 150,
            workload_len: 800,
            test_len: 200,
            popularity: Popularity::Zipf(0.8),
            ..Default::default()
        },
    );
    let dataset = log.dataset.clone();
    let index = C2lsh::build(&dataset, C2lshParams::default());
    let file = PointFile::new(dataset.clone());

    // 2. Offline: learn F' from the historical workload, build the HC-O
    //    scheme, and budget the cache at 25 % of the file.
    let replay = replay_workload(&index, &dataset, &log.workload, k);
    let quantizer = Quantizer::for_range(dataset.value_range());
    let f_prime = replay.f_prime(&dataset, &quantizer);
    let hist = HistogramKind::KnnOptimal.build(&f_prime, 1 << 8);
    let scheme: Arc<dyn ApproxScheme> = Arc::new(GlobalScheme::new(hist, quantizer, dataset.dim()));
    let cache_bytes = dataset.file_bytes() / 4;

    // 3. Share index + file across workers; the test queries are the load.
    let parts = SharedParts::new(Arc::new(index), Arc::new(file));
    let registry = MetricsRegistry::new();

    println!(
        "{:<8} {:>9} {:>10} {:>10} {:>8}",
        "workers", "qps", "p50 (ms)", "p99 (ms)", "ρ_hit"
    );
    let mut best_qps = 0.0f64;
    for workers in [1usize, 4] {
        let cache = Arc::new(ShardedCompactCache::lru(
            Arc::clone(&scheme),
            cache_bytes,
            8,
        ));
        let server = QueryServer::start(
            parts.clone(),
            cache,
            ServeConfig {
                workers,
                queue_capacity: 64,
                io_model: IoModel::HDD,
                // Sleep the modeled disk time per query so worker threads
                // overlap their I/O stalls like a real deployment.
                simulate_io_scale: Some(1.0),
                eager_refetch: false,
                ..ServeConfig::default()
            },
            &registry,
        );
        let report = run_closed_loop(&server, &log.test, 8, k, None);
        server.shutdown();
        println!(
            "{workers:<8} {:>9.1} {:>10.2} {:>10.2} {:>8.3}",
            report.qps(),
            report.p50_us() as f64 / 1e3,
            report.p99_us() as f64 / 1e3,
            report.hit_ratio(),
        );
        best_qps = best_qps.max(report.qps());
    }

    // 4. Overload: offer 3× the service rate into a 8-deep queue with a
    //    250 ms deadline. The bounded queue sheds the excess explicitly.
    let cache = Arc::new(ShardedCompactCache::lru(
        Arc::clone(&scheme),
        cache_bytes,
        8,
    ));
    let server = QueryServer::start(
        parts.clone(),
        cache,
        ServeConfig {
            workers: 4,
            queue_capacity: 8,
            io_model: IoModel::HDD,
            simulate_io_scale: Some(1.0),
            eager_refetch: false,
            ..ServeConfig::default()
        },
        &registry,
    );
    let report = run_open_loop(
        &server,
        &log.test,
        best_qps * 3.0,
        k,
        Some(Duration::from_millis(250)),
    );
    server.shutdown();
    println!(
        "\noverload at {:.0} qps: {:.1}% shed ({} rejected, {} timed out), p99 {:.1} ms",
        best_qps * 3.0,
        report.shed_rate() * 100.0,
        report.rejected,
        report.timed_out,
        report.p99_us() as f64 / 1e3,
    );
    println!("explicit shedding keeps the tail bounded — overload never queues unboundedly.");
}
