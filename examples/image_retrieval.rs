//! Image-retrieval scenario: the paper's motivating workload.
//!
//! Simulates a content-based image search service: a NUS-WIDE-like corpus of
//! 150-d color histograms, a power-law query log (popular images searched
//! over and over, paper Fig. 2), and a C2LSH index. Compares all four
//! histogram variants (HC-W / HC-D / HC-V / HC-O) at the default
//! τ = 8 and reports the Table 4-style refinement times.
//!
//! Run with: `cargo run --release --example image_retrieval`

use std::sync::Arc;

use exploit_every_bit::cache::point::{CompactPointCache, ExactPointCache, PointCache};
use exploit_every_bit::core::histogram::HistogramKind;
use exploit_every_bit::core::prelude::*;
use exploit_every_bit::index::lsh::{C2lsh, C2lshParams};
use exploit_every_bit::query::{replay_workload, KnnEngine};
use exploit_every_bit::storage::PointFile;
use exploit_every_bit::workload::{Preset, Scale};

fn main() {
    let k = 10;
    let tau = 8u32;

    let preset = Preset::nus_wide(Scale::Test);
    let log = preset.instantiate();
    let dataset = log.dataset.clone();
    println!(
        "{}-like corpus: {} images × {} dims, {} test queries",
        preset.name,
        dataset.len(),
        dataset.dim(),
        log.test.len()
    );

    let index = C2lsh::build(&dataset, C2lshParams::default());
    let file = PointFile::new(dataset.clone());
    let replay = replay_workload(&index, &dataset, &log.workload, k);
    let quantizer = Quantizer::for_range(dataset.value_range());
    let cache_bytes = preset
        .default_cache_bytes()
        .min(dataset.file_bytes() * 3 / 10);

    // Data frequencies F (for HC-W/D/V) and workload frequencies F' (HC-O).
    let f_data = quantizer.frequency_array(dataset.as_flat());
    let f_prime = replay.f_prime(&dataset, &quantizer);

    println!(
        "\n{:<10} {:>12} {:>12} {:>14}",
        "method", "C_refine", "I/O pages", "T_refine (s)"
    );
    let exact: Box<dyn PointCache> =
        Box::new(ExactPointCache::hff(&dataset, &replay.ranking, cache_bytes));
    report("EXACT", exact, &index, &file, &log.test, k);

    for kind in [
        HistogramKind::EquiWidth,
        HistogramKind::EquiDepth,
        HistogramKind::VOptimal,
        HistogramKind::KnnOptimal,
    ] {
        let freq = if kind.uses_workload_frequencies() {
            &f_prime
        } else {
            &f_data
        };
        let hist = kind.build(freq, 1 << tau);
        let scheme: Arc<dyn ApproxScheme> =
            Arc::new(GlobalScheme::new(hist, quantizer.clone(), dataset.dim()));
        let cache: Box<dyn PointCache> = Box::new(CompactPointCache::hff(
            &dataset,
            &replay.ranking,
            cache_bytes,
            scheme,
        ));
        report(kind.label(), cache, &index, &file, &log.test, k);
    }
    println!("\nExpected ordering (paper Table 4): EXACT ≫ HC-W ≥ HC-D ≥ HC-O.");
}

fn report(
    label: &str,
    cache: Box<dyn PointCache>,
    index: &C2lsh,
    file: &PointFile,
    queries: &[Vec<f32>],
    k: usize,
) {
    let mut engine = KnnEngine::new(index, file, cache);
    let agg = engine.run_batch(queries, k);
    println!(
        "{label:<10} {:>12.1} {:>12.1} {:>14.4}",
        agg.avg_c_refine, agg.avg_io_pages, agg.avg_refine_secs
    );
}
