//! Quickstart: histogram-cached kNN search end to end.
//!
//! Builds a small clustered dataset, a C2LSH candidate index, replays a
//! Zipf query workload to learn the `F'` frequencies, constructs the paper's
//! HC-O cache (kNN-optimal histogram, Algorithm 2), and compares refinement
//! I/O against the EXACT-cache and NO-CACHE baselines.
//!
//! Run with: `cargo run --release --example quickstart`

use std::sync::Arc;

use exploit_every_bit::cache::point::{CompactPointCache, ExactPointCache, NoCache, PointCache};
use exploit_every_bit::core::histogram::HistogramKind;
use exploit_every_bit::core::prelude::*;
use exploit_every_bit::index::lsh::{C2lsh, C2lshParams};
use exploit_every_bit::query::{replay_workload, KnnEngine};
use exploit_every_bit::storage::PointFile;
use exploit_every_bit::workload::synth::gaussian_mixture;
use exploit_every_bit::workload::{QueryLog, QueryLogConfig};

fn main() {
    let k = 10;

    // 1. Data: 4,000 clustered 64-d points; carve out a query pool and draw
    //    a Zipf-skewed historical workload plus 50 test queries (§5.1).
    let raw = gaussian_mixture(4_000, 64, 20, 10.0, 0.4, 42);
    let log = QueryLog::generate(
        &raw,
        &QueryLogConfig {
            pool_size: 200,
            workload_len: 1_000,
            test_len: 50,
            ..Default::default()
        },
    );
    let dataset = log.dataset.clone();
    println!(
        "dataset: {} points × {} dims ({:.1} MB on disk)",
        dataset.len(),
        dataset.dim(),
        dataset.file_bytes() as f64 / 1e6
    );

    // 2. Index + simulated disk file.
    let index = C2lsh::build(&dataset, C2lshParams::default());
    let file = PointFile::new(dataset.clone());

    // 3. Offline: replay the workload → HFF ranking, QR multiset, F'.
    let replay = replay_workload(&index, &dataset, &log.workload, k);
    println!(
        "workload replay: avg |C(q)| = {:.0}, D_max = {:.2}",
        replay.avg_candidates, replay.d_max
    );

    // 4. The HC-O scheme: kNN-optimal histogram over F' (Algorithm 2).
    let quantizer = Quantizer::for_range(dataset.value_range());
    let tau = 8u32;
    let f_prime = replay.f_prime(&dataset, &quantizer);
    let hist = HistogramKind::KnnOptimal.build(&f_prime, 1 << tau);
    let scheme: Arc<dyn ApproxScheme> = Arc::new(GlobalScheme::new(hist, quantizer, dataset.dim()));

    // 5. Caches at 25 % of the file size.
    let cache_bytes = dataset.file_bytes() / 4;
    let caches: Vec<Box<dyn PointCache>> = vec![
        Box::new(NoCache),
        Box::new(ExactPointCache::hff(&dataset, &replay.ranking, cache_bytes)),
        Box::new(CompactPointCache::hff(
            &dataset,
            &replay.ranking,
            cache_bytes,
            scheme,
        )),
    ];

    // 6. Measure the 50 held-out test queries under each cache.
    println!(
        "\n{:<22} {:>10} {:>10} {:>12} {:>14}",
        "cache", "C_refine", "I/O pages", "hit×prune", "refine (s)"
    );
    for cache in caches {
        let label = cache.label();
        let mut engine = KnnEngine::new(&index, &file, cache);
        let agg = engine.run_batch(&log.test, k);
        println!(
            "{label:<22} {:>10.1} {:>10.1} {:>12.2} {:>14.4}",
            agg.avg_c_refine, agg.avg_io_pages, agg.avg_hit_times_prune, agg.avg_refine_secs
        );
    }
    println!("\nHC-O (compact) should cut refinement I/O well below EXACT at the same budget.");
}
