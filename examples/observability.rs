//! End-to-end observability tour: run Algorithm 1 under HC-O with a live
//! metrics registry, then print the Prometheus exposition text and the
//! per-query JSON report the experiment binaries write to disk.
//!
//! ```bash
//! cargo run --release --example observability
//! ```

use std::sync::Arc;

use exploit_every_bit::cache::point::{CompactPointCache, PointCache};
use exploit_every_bit::core::histogram::HistogramKind;
use exploit_every_bit::core::scheme::GlobalScheme;
use exploit_every_bit::index::lsh::{C2lsh, C2lshParams};
use exploit_every_bit::obs::{export, MetricsRegistry};
use exploit_every_bit::query::{replay_workload, KnnEngine};
use exploit_every_bit::storage::PointFile;
use exploit_every_bit::workload::{Preset, Scale};

fn main() {
    let log = Preset::nus_wide(Scale::Test).instantiate();
    let dataset = log.dataset.clone();
    let index = C2lsh::build(&dataset, C2lshParams::default());
    let file = PointFile::new(dataset.clone());
    let replay = replay_workload(&index, &dataset, &log.workload, 10);
    let quantizer = exploit_every_bit::core::quantize::Quantizer::for_range(dataset.value_range());
    let f_prime = replay.f_prime(&dataset, &quantizer);
    let hist = HistogramKind::KnnOptimal.build(&f_prime, 1 << 8);
    let scheme = Arc::new(GlobalScheme::new(hist, quantizer, dataset.dim()));
    let cache_bytes = dataset.file_bytes() * 3 / 10;
    let cache: Box<dyn PointCache> = Box::new(CompactPointCache::hff(
        &dataset,
        &replay.ranking,
        cache_bytes,
        scheme,
    ));

    // One registry for every layer: engine phases + ρ ratios, cache
    // hits/misses/evictions, storage page counters, and the trace ring.
    let registry = MetricsRegistry::new();
    let mut engine = KnnEngine::new(&index, &file, cache);
    engine.bind_obs(&registry);
    engine.run_batch(&log.test, 10);

    let snap = registry.snapshot();
    println!("——— Prometheus exposition ———");
    print!("{}", export::to_prometheus(&snap));
    println!("——— JSON report (what hc-bench writes to target/metrics/) ———");
    print!("{}", export::to_json(&snap, 3));
}
