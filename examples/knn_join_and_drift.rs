//! The paper's §7 extensions in action: a kNN join over the cache, and the
//! §3.5 periodic rebuild responding to workload drift.
//!
//! Part 1 joins an outer set of probe vectors against the indexed corpus and
//! shows the LRU cache warming across the join (second half of outer points
//! costs far less I/O), plus the effect of clustering the outer set first.
//!
//! Part 2 simulates a workload whose hot region drifts: the stale HFF cache
//! degrades, a `CacheMaintainer` rebuild restores the hit ratio.
//!
//! Run with: `cargo run --release --example knn_join_and_drift`

use exploit_every_bit::cache::point::{CompactPointCache, ExactPointCache};
use exploit_every_bit::core::prelude::*;
use exploit_every_bit::index::lsh::{C2lsh, C2lshParams};
use exploit_every_bit::query::maintenance::{CacheMaintainer, MaintenanceConfig};
use exploit_every_bit::query::{cluster_outer, knn_join, KnnEngine};
use exploit_every_bit::storage::PointFile;
use exploit_every_bit::workload::synth::gaussian_mixture;

fn main() {
    let k = 5;
    let ds = gaussian_mixture(4_000, 48, 16, 10.0, 0.4, 21);
    let index = C2lsh::build(&ds, C2lshParams::default());
    let file = PointFile::new(ds.clone());

    // ---- Part 1: kNN join R ⋉ S ----
    println!("== kNN join ({} outer probes, k = {k}) ==", 60);
    let outer: Vec<Vec<f32>> = (0..60)
        .map(|i| {
            // Probes drawn near a handful of clusters, shuffled.
            let c = (i * 7) % 16;
            ds.point(exploit_every_bit::core::dataset::PointId((c * 37) as u32))
                .iter()
                .map(|v| v + 0.05)
                .collect()
        })
        .collect();

    for (label, ordered) in [
        ("outer as-is", outer.clone()),
        ("outer clustered", {
            let order = cluster_outer(&outer);
            order.iter().map(|&i| outer[i].clone()).collect()
        }),
    ] {
        let cache = ExactPointCache::lru(ds.dim(), ds.file_bytes() / 5);
        let mut engine = KnnEngine::new(&index, &file, Box::new(cache));
        let join = knn_join(&mut engine, &ordered, k);
        let (first, second) = join.io_halves();
        println!(
            "{label:<16}: total I/O {:>6} pages | first half {first:>7.1}/probe, second half {second:>7.1}/probe",
            join.total_io()
        );
    }

    // ---- Part 2: workload drift and periodic rebuild ----
    println!("\n== workload drift + §3.5 rebuild ==");
    let quant = Quantizer::for_range(ds.value_range());
    let era = |cluster: u32| -> Vec<Vec<f32>> {
        (0..150)
            .map(|i| {
                ds.point(exploit_every_bit::core::dataset::PointId(
                    cluster + 16 * (i % 20),
                ))
                .to_vec()
            })
            .collect()
    };
    let era1 = era(0);
    let era2 = era(7);

    let cache_bytes = ds.file_bytes() / 8;
    let mut maintainer = CacheMaintainer::new(MaintenanceConfig::new(150, 8, cache_bytes, k));
    for q in &era1 {
        maintainer.observe(q);
    }
    let (_, cache_v1) = maintainer
        .rebuild(&index, &ds, &quant)
        .expect("window non-empty");

    // Era 2 arrives; measure the stale cache, then rebuild and re-measure.
    let measure = |cache: CompactPointCache, queries: &[Vec<f32>]| -> f64 {
        let mut engine = KnnEngine::new(&index, &file, Box::new(cache));
        engine.run_batch(queries, k).avg_io_pages
    };
    let stale_io = measure(cache_v1, &era2);
    for q in &era2 {
        maintainer.observe(q);
    }
    let (_, cache_v2) = maintainer
        .rebuild(&index, &ds, &quant)
        .expect("window non-empty");
    let fresh_io = measure(cache_v2, &era2);
    println!("stale cache on drifted workload: {stale_io:.1} I/O pages per query");
    println!("after periodic rebuild:          {fresh_io:.1} I/O pages per query");
    println!(
        "rebuild recovered {:.0}% of the I/O",
        100.0 * (1.0 - fresh_io / stale_io.max(1e-9))
    );
}
