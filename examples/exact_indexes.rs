//! Exact tree indexes with leaf-node caching (paper §3.6.1 / Fig. 16).
//!
//! The caching technique is generic: here it accelerates *exact* kNN search
//! on iDistance, VP-tree, and R-tree. For each index we compare NO-CACHE,
//! an EXACT leaf-node cache, and the paper's compact (HC-O) leaf-node cache
//! at the same byte budget — results stay exact in all cases; only the leaf
//! I/O changes.
//!
//! Run with: `cargo run --release --example exact_indexes`

use std::sync::Arc;

use exploit_every_bit::cache::node::{CompactNodeCache, ExactNodeCache, NoNodeCache, NodeCache};
use exploit_every_bit::core::histogram::HistogramKind;
use exploit_every_bit::core::prelude::*;
use exploit_every_bit::index::traits::LeafedIndex;
use exploit_every_bit::index::{IDistance, RTree, VpTree};
use exploit_every_bit::query::{replay_leaf_accesses, TreeSearchEngine};
use exploit_every_bit::storage::point_file::PointFile;
use exploit_every_bit::workload::synth::gaussian_mixture;
use exploit_every_bit::workload::{QueryLog, QueryLogConfig};

fn main() {
    let k = 10;
    let raw = gaussian_mixture(5_000, 32, 25, 10.0, 0.4, 7);
    let log = QueryLog::generate(
        &raw,
        &QueryLogConfig {
            pool_size: 150,
            workload_len: 600,
            test_len: 40,
            ..Default::default()
        },
    );
    let ds = log.dataset.clone();
    let leaf_cap = 4096 / (ds.dim() * 4); // points per 4 KB disk node
    println!(
        "dataset: {} × {}-d, leaf capacity {} points, k = {k}",
        ds.len(),
        ds.dim(),
        leaf_cap
    );

    let idistance = IDistance::build(&ds, 16, leaf_cap, 1);
    let vptree = VpTree::build(&ds, leaf_cap, 1);
    let rtree = RTree::bulk_load(&ds, leaf_cap);
    let indexes: Vec<&dyn LeafedIndex> = vec![&idistance, &vptree, &rtree];

    let cache_bytes = ds.file_bytes() / 4;
    let quantizer = Quantizer::for_range(ds.value_range());
    let file = PointFile::new(ds.clone());

    for index in indexes {
        println!("\n=== {} ({} leaves) ===", index.name(), index.num_leaves());
        // Offline: leaf access frequencies from the workload (§3.6.1).
        let leaf_freq = replay_leaf_accesses(index, &ds, &log.workload, k);

        // HC-O scheme from the workload's QR coordinates. For tree search we
        // approximate F' with the coordinates of points in hot leaves.
        let mut f_prime = vec![0u64; quantizer.n_dom() as usize];
        for &(leaf, freq) in &leaf_freq {
            for p in index.leaf_points(leaf) {
                for &v in ds.point(*p) {
                    f_prime[quantizer.level(v) as usize] += freq;
                }
            }
        }
        let hist = HistogramKind::KnnOptimal.build(&f_prime, 1 << 8);
        let scheme: Arc<dyn ApproxScheme> =
            Arc::new(GlobalScheme::new(hist, quantizer.clone(), ds.dim()));

        // Fill the two node caches in descending leaf frequency.
        let mut exact = ExactNodeCache::new(ds.dim(), cache_bytes);
        let mut compact = CompactNodeCache::new(scheme, cache_bytes);
        for &(leaf, _) in &leaf_freq {
            exact.try_fill(leaf, index.leaf_points(leaf).len());
            let pts = index.leaf_points(leaf).iter().map(|p| ds.point(*p));
            compact.try_fill(leaf, pts);
        }

        println!(
            "{:<18} {:>12} {:>14}",
            "node cache", "leaf I/Os", "refine (s)"
        );
        run(index, &ds, &file, &NoNodeCache, "NO-CACHE", &log.test, k);
        run(index, &ds, &file, &exact, "EXACT", &log.test, k);
        run(index, &ds, &file, &compact, "HC-O compact", &log.test, k);
    }
    println!("\nExpected (paper Fig. 16): HC-O well below EXACT where leaf bounds are informative\n(iDistance); in very high dimensions tree bounds weaken and the gap narrows — see\nEXPERIMENTS.md, Fig 16 notes.");
}

fn run(
    index: &dyn LeafedIndex,
    ds: &exploit_every_bit::core::dataset::Dataset,
    file: &PointFile,
    cache: &dyn NodeCache,
    label: &str,
    queries: &[Vec<f32>],
    k: usize,
) {
    let engine = TreeSearchEngine::new(index, ds, file, cache);
    let mut io = 0u64;
    let mut secs = 0.0;
    for q in queries {
        let (_, stats) = engine.query(q, k);
        io += stats.leaf_fetches;
        secs += stats.modeled_io_secs;
    }
    let n = queries.len() as f64;
    println!("{label:<18} {:>12.1} {:>14.4}", io as f64 / n, secs / n);
}
