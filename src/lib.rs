//! # exploit-every-bit
//!
//! A from-scratch Rust reproduction of **“Exploit Every Bit: Effective
//! Caching for High-Dimensional Nearest Neighbor Search”** (Bo Tang,
//! Man Lung Yiu, Kien A. Hua; IEEE TKDE 28(5), 2016).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`core`] — histograms (HC-W/D/V/O), bit-packed approximate points,
//!   distance bounds, metrics, and the §4 cost model.
//! * [`storage`] — the paged disk simulator and point file with I/O
//!   accounting.
//! * [`io`] — the concurrent fetch broker between refiners and the page
//!   store: cross-query single-flight page coalescing, a GoVector-style
//!   hot/cold shared page buffer, and the batch-aware device cost model
//!   behind look-ahead refinement.
//! * [`index`] — C2LSH, iDistance, VA-file, VP-tree, R-tree.
//! * [`cache`] — HFF/LRU policies over exact, compact, C-VA, and leaf-node
//!   caches.
//! * [`query`] — Algorithm 1 (three-phase kNN search) and the optimal
//!   multi-step refiner, plus the offline builder that replays a workload to
//!   derive `F'` and candidate frequencies.
//! * [`workload`] — synthetic dataset presets and Zipf query logs.
//! * [`obs`] — the metrics registry, phase spans, per-query trace ring, and
//!   Prometheus/JSON exporters every layer above reports into.
//! * [`serve`] — the concurrent query service: sharded compact cache,
//!   bounded admission queue with overload shedding, worker-thread engine
//!   pool, and closed/open-loop load generators.
//! * [`maint`] — the live cache-lifecycle subsystem: query-stream sampling,
//!   background §3.5 rebuilds hot-swapped in by generation, offline
//!   node-cache warm fill, and storage scrub/repair.
//! * [`ingest`] — the live-mutable dataset: checksummed WAL, tombstone-aware
//!   memtable, sealed per-page-checksummed segments with compact-code
//!   sidecars, generational manifest swaps, and exact mid-ingest queries.
//! * [`fleet`] — fault-domain sharded serving: partitioned shard stacks
//!   with independent replicas, a scatter-gather router with per-shard
//!   deadlines, hedged fan-out, and failover, and fleet-wide graceful
//!   degradation with a fleet-level SLO and admin plane.
//!
//! See `examples/quickstart.rs` for an end-to-end walkthrough and
//! `DESIGN.md` for the full system inventory and experiment index.

pub use hc_cache as cache;
pub use hc_core as core;
pub use hc_fleet as fleet;
pub use hc_index as index;
pub use hc_ingest as ingest;
pub use hc_io as io;
pub use hc_maint as maint;
pub use hc_obs as obs;
pub use hc_query as query;
pub use hc_serve as serve;
pub use hc_storage as storage;
pub use hc_workload as workload;

/// One-stop prelude for applications.
pub mod prelude {
    pub use hc_core::prelude::*;
}
