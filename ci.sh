#!/usr/bin/env bash
# Local CI gate. Everything runs offline: the workspace's external
# dependencies (rand / proptest / criterion) are vendored as path
# dependencies under third_party/, so no network access is required.
set -euo pipefail
cd "$(dirname "$0")"
export CARGO_NET_OFFLINE=true

cargo fmt --check
cargo clippy --workspace --all-targets -- -D warnings
cargo build --release
cargo test -q --workspace
