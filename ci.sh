#!/usr/bin/env bash
# Local CI gate. Everything runs offline: the workspace's external
# dependencies (rand / proptest / criterion) are vendored as path
# dependencies under third_party/, so no network access is required.
set -euo pipefail
cd "$(dirname "$0")"
export CARGO_NET_OFFLINE=true

cargo fmt --check
cargo clippy --workspace --all-targets -- -D warnings
cargo build --release
cargo test -q --workspace

# Serving layer: unit + stress + admission tests (point and node caches),
# then a CI-sized serve_scale run that exercises the metrics JSON path end
# to end — including the 4-worker tree-backed section, whose per-shard
# node-cache counters must have seen traffic.
cargo test -q -p hc-serve
cargo test -q -p hc-serve --test node_stress
cargo test -q -p hc-query --test tree_chaos
cargo run -q --release -p hc-bench --bin serve_scale -- --smoke
test -s target/metrics/serve_scale.metrics.json
grep -q '"name":"serve.qps","label":"tree"' target/metrics/serve_scale.metrics.json
grep -q '"name":"serve.queue_wait_p99_us"' target/metrics/serve_scale.metrics.json
grep -q '"name":"serve.deadline_slack_p05_us","label":"overload"' target/metrics/serve_scale.metrics.json

# Blocked compact-scan kernels (DESIGN.md §15): the scalar-vs-vectorized
# equivalence battery under all three kernel selections — default (runtime
# feature detection), AVX2 pinned on at compile time, and SIMD force-disabled
# via the env override — then a microbench smoke whose own asserts require
# bit-identical bounds from every kernel and a real speedup on the SIMD path.
# serve_scale above already asserted the ≥2× phase.bounds win end to end;
# here we check the series landed in both reports.
cargo test -q -p hc-core --test scan_equivalence
RUSTFLAGS="-C target-feature=+avx2" cargo test -q -p hc-core --test scan_equivalence
HC_SCAN_SIMD=off cargo test -q -p hc-core --test scan_equivalence
cargo run -q --release -p hc-bench --bin scan -- --smoke
test -s target/metrics/scan.metrics.json
grep -q '"name":"scan.speedup_blocked_simd"' target/metrics/scan.metrics.json
grep -q '"name":"phase.bounds_p50_ns","label":"blocked"' target/metrics/serve_scale.metrics.json
grep -q '"name":"scan.bounds_speedup"' target/metrics/serve_scale.metrics.json

# Ops plane: exposition-grammar lint, request-trace/SLO/admin integration
# tests, then a live endpoint smoke — bind an ephemeral admin port against
# a tiny server and fetch /metrics and /healthz over a raw TCP socket,
# asserting status 200 and non-empty bodies (what a scrape or a load
# balancer probe actually sees).
cargo test -q -p hc-obs
cargo test -q -p hc-obs --test exposition_lint
cargo test -q -p hc-serve --test admin
cargo run -q --release -p hc-bench --bin ops_smoke

# Chaos smoke: fault-injected serve sweep over both engine families. The
# binary itself asserts zero incorrect results, ≥99% availability at a 1%
# fault rate, bit-identical results at rate 0, and degradation actually
# firing at the top rate; here we additionally check the metrics report
# exists and recorded both the flat-path degradation and the tree sweep.
cargo run -q --release -p hc-bench --bin chaos -- --smoke
test -s target/metrics/chaos.metrics.json
grep -q '"name":"serve.degraded","value":[1-9]' target/metrics/chaos.metrics.json
grep -q '"name":"chaos.tree.availability"' target/metrics/chaos.metrics.json
grep -q '"name":"chaos.tree.pages_retried"' target/metrics/chaos.metrics.json
# The chaos SLO arc must have tripped the flight recorder: an incident file
# with the registry snapshot and the degraded traces that caused it.
grep -q '"name":"chaos.slo.incidents","value":[1-9]' target/metrics/chaos.metrics.json
# The latency-spike class ran on the simulated clock and lost nothing.
grep -q '"name":"chaos.spike.count","value":[1-9]' target/metrics/chaos.metrics.json
test -s target/metrics/incident-0.json
grep -q '"degraded_traces"' target/metrics/incident-0.json

# Maintenance layer: lifecycle (rebuild-equivalence + warm fill), hot-swap
# concurrency stress, and scrub/repair chaos, then a CI-sized drift run.
# The drift binary asserts the full story itself — hit-ratio collapse under
# a hotspot rotation, rebuild + hot-swap under load, recovery within 10% of
# steady state, zero incorrect results throughout, scrub back to exact, and
# warm-filled node cache beating admission-only — so here we only check the
# metrics report landed with the headline series.
cargo test -q -p hc-maint
cargo test -q -p hc-maint --test lifecycle
cargo test -q -p hc-maint --test swap_stress
cargo test -q -p hc-maint --test scrub_chaos
cargo run -q --release -p hc-bench --bin drift -- --smoke
test -s target/metrics/drift.metrics.json
grep -q '"name":"drift.recovery_ratio"' target/metrics/drift.metrics.json
grep -q '"name":"maint.swaps","value":[1-9]' target/metrics/drift.metrics.json
grep -q '"name":"maint.scrub.repaired","value":[1-9]' target/metrics/drift.metrics.json
grep -q '"name":"drift.node.first_epoch_hit_warm"' target/metrics/drift.metrics.json
# Drift's scrub section rode an SloMonitor through Critical and back: the
# transition counter and the burn gauges must be in its report.
grep -q '"name":"slo.transitions","value":[1-9]' target/metrics/drift.metrics.json
grep -q '"name":"slo.burn_fast","label":"exactness"' target/metrics/drift.metrics.json

# Live ingest (DESIGN.md §13): WAL/memtable/segment/manifest unit suites,
# crash-recovery property tests (arbitrary truncation, torn tails, bit
# rot), the end-to-end lifecycle walk, the serve-backend integration, and
# a CI-sized ingest bench — sustained mixed mutations with concurrent
# query load where every verified burst must be exact against the
# brute-force live-set oracle, and a mid-run kill/restart must replay all
# acked writes from the WAL with the manifest generation monotonic.
cargo test -q -p hc-ingest
cargo test -q -p hc-ingest --test crash_recovery
cargo test -q -p hc-ingest --test lifecycle
cargo test -q -p hc-serve --test ingest_serve
ingest_out="$(cargo run -q --release -p hc-bench --bin ingest -- --smoke)"
grep -q ' 0 incorrect results' <<<"$ingest_out"
grep -q '^wal replay: .* (monotonic)$' <<<"$ingest_out"
test -s target/metrics/ingest.metrics.json
grep -q '"name":"ingest.seals","value":[1-9]' target/metrics/ingest.metrics.json
grep -q '"name":"ingest.wal_replayed_records","value":[1-9]' target/metrics/ingest.metrics.json
grep -q '"name":"ingest.wal_checkpoints","value":[1-9]' target/metrics/ingest.metrics.json
grep -q '"name":"ingest.compactions","value":[1-9]' target/metrics/ingest.metrics.json
grep -q '"name":"maint.ingest.cycles","value":[1-9]' target/metrics/ingest.metrics.json

# Batched I/O (DESIGN.md §16): broker unit suite, the single-flight
# concurrency/fault-propagation tests, and the proptest battery proving
# concurrent queries through a shared broker stay bit-identical to the
# single-threaded broker-less reference under fault schedules up to 30%.
# The io bench smoke asserts the rest itself — identical answers on every
# pass, ≥20% physical-page reduction, a better refine p50 than the
# sharing-disabled passthrough, a bounded look-ahead waste ratio, and a
# chaos sweep with zero incorrect answers — so here we check the report
# landed with the headline series: zero incorrect, real coalescing, and
# the waste-ratio gauge present.
cargo test -q -p hc-io
cargo test -q -p hc-io --test single_flight
cargo test -q -p hc-io --test broker_props
cargo run -q --release -p hc-bench --bin io -- --smoke
test -s target/metrics/io.metrics.json
grep -q '"name":"io.incorrect","value":0' target/metrics/io.metrics.json
grep -q '"name":"io.pages_coalesced","value":[1-9]' target/metrics/io.metrics.json
grep -q '"name":"io.lookahead_wasted_ratio"' target/metrics/io.metrics.json
grep -q '"name":"storage.io.hot_hits","value":[1-9]' target/metrics/io.metrics.json

# Fleet (DESIGN.md §14): router merge correctness proptests, scatter-gather
# integration tests (hedging, failover, shard death, scrub recovery, the
# fleet admin plane), then the CI-sized fleet bench — mixed-tenant Zipf
# traffic through a mid-run replica kill at 100% fault rate, a whole-shard
# kill, and a scrub recovery. The binary asserts zero incorrect answers,
# ≥99% availability through both kills, bounded p99, and the /healthz arc
# (200 with a dead replica, 503 with a dead shard, 200 after scrub); here
# we check the arc landed in the metrics report.
cargo test -q -p hc-fleet
cargo test -q -p hc-fleet --test merge_props
cargo test -q -p hc-fleet --test fleet
cargo run -q --release -p hc-bench --bin fleet -- --smoke
test -s target/metrics/fleet.metrics.json
grep -q '"name":"fleet.incorrect","value":0' target/metrics/fleet.metrics.json
grep -q '"name":"fleet.hedges_fired","value":[1-9]' target/metrics/fleet.metrics.json
grep -q '"name":"fleet.failovers","value":[1-9]' target/metrics/fleet.metrics.json
grep -q '"name":"fleet.kill.healthz_status","value":200' target/metrics/fleet.metrics.json
grep -q '"name":"fleet.degrade.healthz_status","value":503' target/metrics/fleet.metrics.json
grep -q '"name":"fleet.recover.healthz_status","value":200' target/metrics/fleet.metrics.json
grep -q '"name":"fleet.bench.pages_repaired","value":[1-9]' target/metrics/fleet.metrics.json
